package bench

import (
	"fmt"
	"strings"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/repair"
	"harmony/internal/sim"
	"harmony/internal/ycsb"
)

// The churn experiment exercises the failure regime the anti-entropy
// subsystem exists for: a node goes down mid-run, misses every write of the
// outage (hinted handoff is capped and the surviving hints are lost at
// recovery, modeling coordinator crashes), then comes back serving
// arbitrarily stale data. With hints alone, reads at CL=ONE keep hitting the
// stale replica until sampled read repair happens to touch each divergent
// key — unbounded convergence that silently violates tight staleness
// tolerances. With repair enabled, the recovery trigger runs Merkle sessions
// that stream exactly the divergent rows, the divergence gauge makes the
// controller hold affected groups at quorum while convergence is in flight,
// and every group returns within its tolerance in bounded time.

// ChurnSpec parameterizes the failure/churn experiment.
type ChurnSpec struct {
	Scenario Scenario
	// HotKeys / TotalKeys split the keyspace as in the hotcold experiment.
	HotKeys   int64
	TotalKeys int64
	// HotThreads / ColdThreads size the two client driver pools.
	HotThreads, ColdThreads int
	// HotArrival / ColdArrival drive the pools open loop (Poisson, ops/s):
	// offered load does not pause for the outage, so writes keep arriving —
	// and keep being hinted, dropped, and diverging — while the victim is
	// down, exactly like production traffic.
	HotArrival, ColdArrival float64
	// HotTolerance / ColdTolerance are the per-group stale-read targets.
	HotTolerance, ColdTolerance float64
	// Baseline is how long staleness windows are observed before the
	// outage; Outage how long the victim stays down; PostWatch how long
	// recovery is observed.
	Baseline, Outage, PostWatch time.Duration
	// WindowLen is the staleness measurement window.
	WindowLen time.Duration
	// RecoverWindows is how many consecutive within-tolerance windows
	// declare a group recovered.
	RecoverWindows int
	// HintQueueLimit caps each coordinator's hint queue (overflow drops
	// mutations); DropHintsAtRecovery discards the survivors just before
	// the victim returns (the coordinator-crash injection).
	HintQueueLimit      int
	DropHintsAtRecovery bool
	// RepairInterval / RepairConcurrency / RepairLeaves tune the repair
	// subsystem for the repair-enabled run.
	RepairInterval    time.Duration
	RepairConcurrency int
	RepairLeaves      int
}

// DefaultChurnSpec returns the standard configuration: a 6-node RF=5
// cluster (every node replicates most keys, so a stale replica is visible
// to ~1/5 of CL=ONE reads), a 5s outage, capped-and-dropped hints.
func DefaultChurnSpec() ChurnSpec {
	sc := Grid5000()
	// Small cluster, near-total replication: the regime where one recovered
	// replica's divergence is actually exposed to reads.
	sc.Name = "churn-grid5000"
	sc.Spec.RacksPerDC = 2
	sc.Spec.NodesPerRack = 3
	sc.Spec.HintedHandoff = true
	return ChurnSpec{
		Scenario:   sc,
		HotKeys:    400,
		TotalKeys:  8_000,
		HotThreads: 10,
		// The cold pool carries enough write traffic that an outage dirties
		// a substantial fraction of the cold keyspace, while its loose
		// tolerance keeps the estimator at CL=ONE in steady state — the
		// combination that exposes post-recovery divergence to reads.
		ColdThreads:         25,
		HotArrival:          1200,
		ColdArrival:         4000,
		HotTolerance:        0.05,
		ColdTolerance:       0.30,
		Baseline:            1500 * time.Millisecond,
		Outage:              5 * time.Second,
		PostWatch:           10 * time.Second,
		WindowLen:           250 * time.Millisecond,
		RecoverWindows:      4,
		HintQueueLimit:      300,
		DropHintsAtRecovery: true,
		RepairInterval:      300 * time.Millisecond,
		RepairConcurrency:   3,
		RepairLeaves:        64,
	}
}

// ChurnWindow is one staleness measurement window.
type ChurnWindow struct {
	// OffsetMs is the window start relative to the victim's recovery
	// (negative windows precede it; the outage windows are included).
	OffsetMs float64   `json:"offset_ms"`
	Samples  []uint64  `json:"samples"` // shadow probes per group
	Stale    []uint64  `json:"stale"`   // stale probes per group
	Fraction []float64 `json:"fraction"`
}

// ChurnGroup is one key group's outcome.
type ChurnGroup struct {
	Name      string  `json:"name"`
	Tolerance float64 `json:"tolerance"`
	// RecoveredWithinMs is the time from the victim's return until the
	// group began RecoverWindows consecutive within-tolerance windows; -1
	// when the group never restabilized inside the watched horizon.
	RecoveredWithinMs float64 `json:"recovered_within_ms"`
	// PostStale / PostSamples accumulate over the post-recovery horizon;
	// WorstWindow is the worst windowed stale fraction in it.
	PostStale    uint64  `json:"post_stale"`
	PostSamples  uint64  `json:"post_samples"`
	PostFraction float64 `json:"post_fraction"`
	WorstWindow  float64 `json:"worst_window"`
	// TailFraction is the stale fraction over the LAST quarter of the
	// post-recovery horizon: near zero once convergence completed, still
	// elevated when divergence is only draining through sampled read
	// repair — the "bounded versus unbounded" contrast in one number.
	TailFraction float64 `json:"tail_fraction"`
	// FinalLevel is the group's consistency level when the run ended.
	FinalLevel string `json:"final_level"`
}

// ChurnRun is one policy's trajectory through the failure schedule.
type ChurnRun struct {
	Policy        string        `json:"policy"`
	Groups        []ChurnGroup  `json:"groups"`
	Windows       []ChurnWindow `json:"windows"`
	Operations    int64         `json:"operations"`
	Errors        int64         `json:"errors"`
	ThroughputOps float64       `json:"throughput_ops"`
	HintsQueued   uint64        `json:"hints_queued"`
	HintsDropped  uint64        `json:"hints_dropped"`
	// RowsHealed / RepairBytes summarize the anti-entropy work (zero for
	// hints-only).
	RowsHealed  uint64 `json:"rows_healed"`
	RepairBytes uint64 `json:"repair_bytes"`
	// RowsRecovered counts rows rebuilt from disk at startup — nonzero only
	// in the live persistent-restart arm, where the victim reopens its data
	// dir instead of returning empty.
	RowsRecovered uint64 `json:"rows_recovered,omitempty"`
}

// ChurnResult compares repair-enabled recovery against hints-only on an
// identical failure schedule.
type ChurnResult struct {
	Scenario  string   `json:"scenario"`
	Victim    string   `json:"victim"`
	HotKeys   int64    `json:"hot_keys"`
	TotalKeys int64    `json:"total_keys"`
	OutageMs  float64  `json:"outage_ms"`
	Repair    ChurnRun `json:"repair"`
	HintsOnly ChurnRun `json:"hints_only"`
}

// Format renders the comparison.
func (r ChurnResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== churn (%s, victim %s down %.0fms, %d hot / %d total keys) ==\n",
		r.Scenario, r.Victim, r.OutageMs, r.HotKeys, r.TotalKeys)
	for _, run := range []ChurnRun{r.Repair, r.HintsOnly} {
		fmt.Fprintf(&b, "%-10s tput=%8.0f ops/s errors=%d hints=%d dropped=%d healed=%d (%d KiB streamed)\n",
			run.Policy, run.ThroughputOps, run.Errors, run.HintsQueued, run.HintsDropped,
			run.RowsHealed, run.RepairBytes/1024)
		for _, g := range run.Groups {
			rec := "NEVER"
			if g.RecoveredWithinMs >= 0 {
				rec = fmt.Sprintf("%.0fms", g.RecoveredWithinMs)
			}
			fmt.Fprintf(&b, "  %-5s tol=%.2f level=%-6s recovered=%-8s post-stale=%d/%d (%.3f) worst-window=%.3f tail=%.3f\n",
				g.Name, g.Tolerance, g.FinalLevel, rec, g.PostStale, g.PostSamples, g.PostFraction, g.WorstWindow, g.TailFraction)
		}
	}
	return b.String()
}

// Churn runs the failure schedule for both policies and compares them.
func Churn(spec ChurnSpec, opts Options) (ChurnResult, error) {
	opts = opts.withDefaults()
	if spec.HotKeys <= 0 || spec.TotalKeys <= spec.HotKeys {
		return ChurnResult{}, fmt.Errorf("bench: churn needs 0 < HotKeys < TotalKeys, got %d/%d", spec.HotKeys, spec.TotalKeys)
	}
	if spec.WindowLen <= 0 || spec.Outage <= 0 || spec.PostWatch < spec.WindowLen {
		return ChurnResult{}, fmt.Errorf("bench: churn needs positive WindowLen/Outage and PostWatch >= WindowLen")
	}
	withRepair, err := runChurn(spec, opts, true)
	if err != nil {
		return ChurnResult{}, fmt.Errorf("bench: churn repair: %w", err)
	}
	hintsOnly, err := runChurn(spec, opts, false)
	if err != nil {
		return ChurnResult{}, fmt.Errorf("bench: churn hints-only: %w", err)
	}
	res := ChurnResult{
		Scenario:  spec.Scenario.Name,
		Victim:    hintsOnly.victim,
		HotKeys:   spec.HotKeys,
		TotalKeys: spec.TotalKeys,
		OutageMs:  durMs(spec.Outage),
		Repair:    withRepair.ChurnRun,
		HintsOnly: hintsOnly.ChurnRun,
	}
	opts.progress("churn %s: repair post-stale %.3f/%.3f (hot/cold) vs hints-only %.3f/%.3f",
		spec.Scenario.Name,
		res.Repair.Groups[0].PostFraction, res.Repair.Groups[1].PostFraction,
		res.HintsOnly.Groups[0].PostFraction, res.HintsOnly.Groups[1].PostFraction)
	return res, nil
}

type churnRun struct {
	ChurnRun
	victim string
}

// runChurn measures one policy through the failure schedule.
func runChurn(spec ChurnSpec, opts Options, withRepair bool) (churnRun, error) {
	s := sim.New(opts.Seed)
	cspec := spec.Scenario.Spec
	cspec.Groups = 2
	cspec.GroupFn = hotColdGroupFn(spec.HotKeys)
	cspec.HintedHandoff = true
	cspec.HintQueueLimit = spec.HintQueueLimit
	if withRepair {
		cspec.Repair = repair.Options{
			Enabled:        true,
			Interval:       spec.RepairInterval,
			Concurrency:    spec.RepairConcurrency,
			LeavesPerRange: spec.RepairLeaves,
		}
	}
	c, err := cluster.BuildSim(s, cspec)
	if err != nil {
		return churnRun{}, err
	}
	if spec.Scenario.Prepare != nil {
		if stop := spec.Scenario.Prepare(s, c); stop != nil {
			defer stop()
		}
	}

	tols := []float64{spec.HotTolerance, spec.ColdTolerance}
	ctl := core.NewController(core.ControllerConfig{
		Policy: core.Policy{
			Name:               fmt.Sprintf("churn-%d%%", int(spec.HotTolerance*100+0.5)),
			ToleratedStaleRate: spec.HotTolerance,
		},
		N:                    cspec.RF,
		BandwidthBytesPerSec: cspec.Profile.BandwidthBytesPerSec,
		Groups:               2,
		GroupFn:              cspec.GroupFn,
		GroupTolerances:      tols,
	})
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "harmony-monitor",
		Nodes:          c.NodeIDs(),
		Interval:       spec.Scenario.MonitorInterval,
		ReplicaSetSize: cspec.RF,
		OnObservation:  ctl.Observe,
	}, s, c.Bus)
	c.Net.Colocate("harmony-monitor", c.NodeIDs()[0])
	c.Bus.Register("harmony-monitor", s, mon)

	// The victim: with RF=5 over 6 nodes it replicates nearly every key. It
	// stays in the client rotation — drivers eat timeouts while it is down
	// (a short OpTimeout keeps threads cycling), and the moment it returns
	// it coordinates ~1/6 of the traffic, serving CL=ONE reads from its own
	// stale engine. That is exactly how a recovered replica's divergence
	// reaches users in production.
	victim := c.NodeIDs()[1]

	hotWl := ycsb.Workload{
		Name: "churn-hot", ReadProportion: 0.5, UpdateProportion: 0.5,
		RecordCount: spec.HotKeys, ValueBytes: 1024,
		RequestDistribution: ycsb.DistZipfian,
	}
	// Cold data is written rarely: a key dirtied during the outage stays
	// divergent until read repair happens to sample it or anti-entropy
	// streams it — foreground overwrites are too rare to self-heal, which
	// is what makes repair the load-bearing mechanism here.
	coldWl := ycsb.Workload{
		Name: "churn-cold", ReadProportion: 0.95, UpdateProportion: 0.05,
		RecordCount: spec.TotalKeys, ValueBytes: 1024,
		RequestDistribution: ycsb.DistUniform,
	}
	newRunner := func(wl ycsb.Workload, threads int, arrival float64, prefix string, seedOff int64) (*ycsb.Runner, error) {
		return ycsb.NewRunner(ycsb.RunConfig{
			Workload:     wl,
			Threads:      threads,
			ShadowEvery:  2,
			Seed:         opts.Seed + seedOff,
			ClientPrefix: prefix,
			Policy:       ctl,
			ArrivalRate:  arrival,
			OpTimeout:    750 * time.Millisecond,
		}, s, c)
	}
	hotR, err := newRunner(hotWl, spec.HotThreads, spec.HotArrival, "hot", 101)
	if err != nil {
		return churnRun{}, err
	}
	coldR, err := newRunner(coldWl, spec.ColdThreads, spec.ColdArrival, "cold", 202)
	if err != nil {
		return churnRun{}, err
	}
	coldR.Load()

	mon.Start()
	hotR.Start()
	coldR.Start()

	// Staleness windows: per-group shadow-probe deltas on a fixed cadence.
	var windows []ChurnWindow
	tickerStart := s.Now()
	last := c.AggregateMetrics()
	windowStop := sim.Every(s, func() time.Duration { return spec.WindowLen }, func() {
		cur := c.AggregateMetrics()
		w := ChurnWindow{}
		for g := 0; g < 2; g++ {
			var samples, stale uint64
			if g < len(cur.GroupShadowSamples) && g < len(last.GroupShadowSamples) {
				samples = cur.GroupShadowSamples[g] - last.GroupShadowSamples[g]
				stale = cur.GroupShadowStale[g] - last.GroupShadowStale[g]
			}
			frac := 0.0
			if samples > 0 {
				frac = float64(stale) / float64(samples)
			}
			w.Samples = append(w.Samples, samples)
			w.Stale = append(w.Stale, stale)
			w.Fraction = append(w.Fraction, frac)
		}
		last = cur
		windows = append(windows, w)
	})

	// Warm-up, then the schedule: baseline -> outage -> recovery -> watch.
	warmup := 8 * spec.Scenario.MonitorInterval
	if warmup < 2*time.Second {
		warmup = 2 * time.Second
	}
	s.RunFor(warmup)
	hotR.ResetMeasurement()
	coldR.ResetMeasurement()
	s.RunFor(spec.Baseline)
	c.SetDown(victim)
	s.RunFor(spec.Outage)
	if spec.DropHintsAtRecovery {
		for _, n := range c.Nodes {
			n.DropHints()
		}
	}
	c.SetUp(victim)
	recoveredAt := s.Now()
	s.RunFor(spec.PostWatch)
	windowStop()
	hotR.Stop()
	coldR.Stop()
	mon.Stop()
	hotR.Drain()
	coldR.Drain()

	// Assemble the run: window i covers [tickerStart + i*WindowLen,
	// tickerStart + (i+1)*WindowLen); offsets are relative to the victim's
	// recovery instant, and the post-recovery horizon starts at the first
	// window fully after it.
	recoveryOffset := recoveredAt.Sub(tickerStart)
	postStart := len(windows)
	for i := range windows {
		start := time.Duration(i) * spec.WindowLen
		windows[i].OffsetMs = durMs(start - recoveryOffset)
		if start >= recoveryOffset && i < postStart {
			postStart = i
		}
	}

	run := churnRun{victim: string(victim)}
	run.Policy = "hints-only"
	if withRepair {
		run.Policy = "repair"
	}
	run.Windows = windows
	hotRep, coldRep := hotR.Report(), coldR.Report()
	run.Operations = hotRep.Operations + coldRep.Operations
	run.Errors = hotRep.Errors + coldRep.Errors
	run.ThroughputOps = hotRep.ThroughputOps + coldRep.ThroughputOps
	agg := c.AggregateMetrics()
	run.HintsQueued = agg.HintsQueued
	run.HintsDropped = agg.HintsDropped
	run.RowsHealed = agg.RepairRows
	for _, n := range c.Nodes {
		if m := n.RepairManager(); m != nil {
			run.RepairBytes += m.Stats().BytesStreamed
		}
	}

	names := []string{"hot", "cold"}
	tailStart := postStart + (len(windows)-postStart)*3/4
	for g := 0; g < 2; g++ {
		cg := ChurnGroup{Name: names[g], Tolerance: tols[g], RecoveredWithinMs: -1,
			FinalLevel: ctl.GroupLast(g).Level.String()}
		streak := 0
		var tailStale, tailSamples uint64
		for i := postStart; i < len(windows); i++ {
			w := windows[i]
			cg.PostSamples += w.Samples[g]
			cg.PostStale += w.Stale[g]
			if i >= tailStart {
				tailSamples += w.Samples[g]
				tailStale += w.Stale[g]
			}
			if w.Fraction[g] > cg.WorstWindow {
				cg.WorstWindow = w.Fraction[g]
			}
			// Windows too thin to measure (a handful of probes) are neutral:
			// they neither prove recovery nor void it.
			within := w.Samples[g] < 10 || w.Fraction[g] <= tols[g]
			if within {
				streak++
				if streak == spec.RecoverWindows && cg.RecoveredWithinMs < 0 {
					// Recovery dates from the START of the stable streak.
					first := i - spec.RecoverWindows + 1
					cg.RecoveredWithinMs = durMs(time.Duration(first)*spec.WindowLen - recoveryOffset)
					if cg.RecoveredWithinMs < 0 {
						cg.RecoveredWithinMs = 0
					}
				}
			} else {
				streak = 0
				cg.RecoveredWithinMs = -1 // a later breach voids an early call
			}
		}
		if cg.PostSamples > 0 {
			cg.PostFraction = float64(cg.PostStale) / float64(cg.PostSamples)
		}
		if tailSamples > 0 {
			cg.TailFraction = float64(tailStale) / float64(tailSamples)
		}
		run.Groups = append(run.Groups, cg)
	}
	return run, nil
}

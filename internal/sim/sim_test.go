package sim

import (
	"sync"
	"testing"
	"time"
)

func TestSimOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSimTieBreakFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSimClockAdvances(t *testing.T) {
	s := New(1)
	start := s.Now()
	var at time.Time
	s.After(42*time.Millisecond, func() { at = s.Now() })
	s.RunUntilIdle(10)
	if got := at.Sub(start); got != 42*time.Millisecond {
		t.Fatalf("callback ran at +%v, want +42ms", got)
	}
}

func TestSimCancel(t *testing.T) {
	s := New(1)
	fired := false
	cancel := s.After(time.Millisecond, func() { fired = true })
	cancel()
	cancel() // double-cancel must be safe
	s.RunUntilIdle(10)
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			s.After(time.Millisecond, recurse)
		}
	}
	s.Post(recurse)
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
}

func TestSimRunDeadline(t *testing.T) {
	s := New(1)
	count := 0
	s.Ticker(10*time.Millisecond, func() { count++ })
	s.RunFor(95 * time.Millisecond)
	if count != 9 {
		t.Fatalf("ticks = %d, want 9", count)
	}
	// Clock must land exactly on the deadline even though the next event is
	// beyond it.
	if got := s.Now().Sub(New(1).Now()); got != 95*time.Millisecond {
		t.Fatalf("now = +%v, want +95ms", got)
	}
}

func TestSimTickerStop(t *testing.T) {
	s := New(1)
	count := 0
	stop := s.Ticker(time.Millisecond, func() {
		count++
		if count == 3 {
			// stop from within the callback
		}
	})
	s.RunFor(3 * time.Millisecond)
	stop()
	s.RunFor(10 * time.Millisecond)
	if count != 3 {
		t.Fatalf("ticks after stop = %d, want 3", count)
	}
}

func TestSimRunUntilIdleGuard(t *testing.T) {
	s := New(1)
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	s.Post(loop)
	if err := s.RunUntilIdle(50); err == nil {
		t.Fatal("expected runaway-loop error")
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(99)
		var draws []int64
		for i := 0; i < 4; i++ {
			d := time.Duration(s.Rand().Intn(100)) * time.Millisecond
			s.After(d, func() { draws = append(draws, s.Now().UnixNano()) })
		}
		s.RunUntilIdle(100)
		return draws
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic run lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic event times: %v vs %v", a, b)
		}
	}
}

func TestSimNewStreamIndependence(t *testing.T) {
	s := New(7)
	r1, r2 := s.NewStream(), s.NewStream()
	same := true
	for i := 0; i < 8; i++ {
		if r1.Int63() != r2.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("derived streams are identical")
	}
}

func TestRealRuntimeServializesAndRuns(t *testing.T) {
	r := NewRealRuntime()
	defer r.Stop()
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	r.Post(func() {
		mu.Lock()
		got = append(got, 1)
		mu.Unlock()
	})
	r.After(5*time.Millisecond, func() {
		mu.Lock()
		got = append(got, 2)
		mu.Unlock()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestRealRuntimeCancel(t *testing.T) {
	r := NewRealRuntime()
	defer r.Stop()
	fired := make(chan struct{}, 1)
	cancel := r.After(20*time.Millisecond, func() { fired <- struct{}{} })
	cancel()
	select {
	case <-fired:
		t.Fatal("canceled timer fired")
	case <-time.After(60 * time.Millisecond):
	}
}

func TestRealRuntimeStopIdempotent(t *testing.T) {
	r := NewRealRuntime()
	r.Stop()
	r.Stop()
	r.Post(func() { t.Error("post after stop executed") }) // must be dropped
	time.Sleep(10 * time.Millisecond)
}

func BenchmarkSimEventThroughput(b *testing.B) {
	s := New(1)
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, fn)
		}
	}
	b.ResetTimer()
	s.Post(fn)
	s.RunUntilIdle(uint64(b.N) + 10)
}

func TestEveryVariableIntervals(t *testing.T) {
	s := New(1)
	gaps := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	i := 0
	next := func() time.Duration {
		d := gaps[i%len(gaps)]
		i++
		return d
	}
	var fired []time.Time
	stop := Every(s, next, func() { fired = append(fired, s.Now()) })
	start := s.Now()
	s.RunFor(70 * time.Millisecond)
	stop()
	s.RunFor(200 * time.Millisecond)
	// Expected firing offsets: 10, 30, 70 ms; stopped before the next.
	want := []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 70 * time.Millisecond}
	if len(fired) != len(want) {
		t.Fatalf("fired %d times, want %d", len(fired), len(want))
	}
	for j, at := range fired {
		if got := at.Sub(start); got != want[j] {
			t.Fatalf("firing %d at +%v, want +%v", j, got, want[j])
		}
	}
}

func TestEveryStopFromCallback(t *testing.T) {
	s := New(1)
	count := 0
	var stop func()
	stop = Every(s, func() time.Duration { return time.Millisecond }, func() {
		count++
		if count == 3 {
			stop()
		}
	})
	s.RunFor(time.Second)
	if count != 3 {
		t.Fatalf("callback ran %d times after self-stop, want 3", count)
	}
}

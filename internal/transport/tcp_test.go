package transport

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

// syncCapture is a concurrency-safe message sink for TCP tests.
type syncCapture struct {
	mu    sync.Mutex
	froms []ring.NodeID
	msgs  []wire.Message
	ch    chan struct{}
}

func newSyncCapture() *syncCapture {
	return &syncCapture{ch: make(chan struct{}, 128)}
}

func (c *syncCapture) Deliver(from ring.NodeID, m wire.Message) {
	c.mu.Lock()
	c.froms = append(c.froms, from)
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *syncCapture) wait(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for message %d/%d", i+1, n)
		}
	}
}

func (c *syncCapture) snapshot() ([]ring.NodeID, []wire.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ring.NodeID(nil), c.froms...), append([]wire.Message(nil), c.msgs...)
}

func TestTCPRoundTrip(t *testing.T) {
	rtA, rtB := sim.NewRealRuntime(), sim.NewRealRuntime()
	defer rtA.Stop()
	defer rtB.Stop()
	sinkA, sinkB := newSyncCapture(), newSyncCapture()

	a, err := NewTCPNode(TCPConfig{ID: "a", Listen: "127.0.0.1:0"}, rtA, sinkA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNode(TCPConfig{ID: "b", Listen: "127.0.0.1:0"}, rtB, sinkB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr().String())

	want := wire.Mutation{ID: 7, Key: []byte("k"), Value: wire.Value{Data: []byte("v"), Timestamp: 42}}
	a.Send("a", "b", want)
	sinkB.wait(t, 1)
	froms, msgs := sinkB.snapshot()
	if froms[0] != "a" || !reflect.DeepEqual(msgs[0], want) {
		t.Fatalf("got %v from %v", msgs[0], froms[0])
	}

	// Reply over the reverse path without b knowing a's address.
	ack := wire.MutationAck{ID: 7}
	b.Send("b", "a", ack)
	sinkA.wait(t, 1)
	_, amsgs := sinkA.snapshot()
	if !reflect.DeepEqual(amsgs[0], ack) {
		t.Fatalf("reply = %v", amsgs[0])
	}
}

func TestTCPUnknownPeerDropped(t *testing.T) {
	rt := sim.NewRealRuntime()
	defer rt.Stop()
	var logged []string
	var mu sync.Mutex
	n, err := NewTCPNode(TCPConfig{ID: "solo", Logf: func(f string, args ...any) {
		mu.Lock()
		logged = append(logged, f)
		mu.Unlock()
	}}, rt, newSyncCapture())
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Send("solo", "ghost", wire.Ping{ID: 1}) // must not panic or block
	mu.Lock()
	defer mu.Unlock()
	if len(logged) == 0 {
		t.Fatal("drop not logged")
	}
}

func TestTCPManyMessagesInOrderPerPeer(t *testing.T) {
	rtA, rtB := sim.NewRealRuntime(), sim.NewRealRuntime()
	defer rtA.Stop()
	defer rtB.Stop()
	sinkB := newSyncCapture()
	a, err := NewTCPNode(TCPConfig{ID: "a"}, rtA, newSyncCapture())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNode(TCPConfig{ID: "b", Listen: "127.0.0.1:0"}, rtB, sinkB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr().String())

	const count = 200
	for i := 0; i < count; i++ {
		a.Send("a", "b", wire.Ping{ID: uint64(i)})
	}
	sinkB.wait(t, count)
	_, msgs := sinkB.snapshot()
	for i, m := range msgs {
		if got := m.(wire.Ping).ID; got != uint64(i) {
			t.Fatalf("message %d has ID %d; TCP must preserve per-peer order", i, got)
		}
	}
}

func TestTCPCloseStopsAccept(t *testing.T) {
	rt := sim.NewRealRuntime()
	defer rt.Stop()
	n, err := NewTCPNode(TCPConfig{ID: "x", Listen: "127.0.0.1:0"}, rt, newSyncCapture())
	if err != nil {
		t.Fatal(err)
	}
	addr := n.Addr().String()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-binding the same address proves the listener is gone.
	n2, err := NewTCPNode(TCPConfig{ID: "y", Listen: addr}, rt, newSyncCapture())
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	n2.Close()
}

package bench

import (
	"testing"
)

// TestRegroupLearnedBeatsStaticAfterMigration pins the acceptance criterion
// of the grouping subsystem: once the hotspot migrates, learned regrouping
// must out-throughput the build-time-pinned groups while keeping every
// learned group inside its staleness tolerance, and it must re-tighten the
// migrated hot keys to the hot target the static grouping abandons.
func TestRegroupLearnedBeatsStaticAfterMigration(t *testing.T) {
	spec := DefaultRegroupSpec()
	res, err := Regroup(spec, Options{OpsPerPoint: 8000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	if res.Learned.Phase2.ThroughputOps <= res.Static.Phase2.ThroughputOps {
		t.Fatalf("post-migration learned throughput %.0f did not beat static %.0f",
			res.Learned.Phase2.ThroughputOps, res.Static.Phase2.ThroughputOps)
	}
	if len(res.Learned.Phase2.Groups) != 2 {
		t.Fatalf("learned groups = %+v", res.Learned.Phase2.Groups)
	}
	for _, g := range res.Learned.Phase2.Groups {
		if !g.WithinTolerance {
			t.Fatalf("learned %s group staleness %.3f exceeds tolerance %.2f after re-adaptation",
				g.Name, g.StaleFraction, g.Tolerance)
		}
		if g.ShadowSamples == 0 {
			t.Fatalf("learned %s group never probed", g.Name)
		}
	}
	// The loop actually ran: epochs were applied, and the migration was
	// re-learned within a measurable lag.
	if res.Learned.Epochs == 0 {
		t.Fatal("learned run applied no epochs")
	}
	if res.Learned.RegroupLagMs <= 0 {
		t.Fatalf("regroup lag = %.0fms, want positive", res.Learned.RegroupLagMs)
	}
	// The differentiation that matters after the migration: learned guards
	// the new hot keys at the tight target and keeps escalating their
	// group; the pinned grouping leaves them on the loose target.
	if res.Learned.HotProtectedTo != spec.HotTolerance {
		t.Fatalf("learned hot data protected to %.2f, want %.2f",
			res.Learned.HotProtectedTo, spec.HotTolerance)
	}
	if res.Static.HotProtectedTo != spec.ColdTolerance {
		t.Fatalf("static hot data protected to %.2f, want the loose %.2f",
			res.Static.HotProtectedTo, spec.ColdTolerance)
	}
	if res.Learned.Phase2.Groups[0].FinalLevel == "ONE" {
		t.Fatalf("learned tight group never escalated after migration: %+v",
			res.Learned.Phase2.Groups[0])
	}
	if res.Learned.Phase2.Errors > res.Learned.Phase2.Operations/50 ||
		res.Static.Phase2.Errors > res.Static.Phase2.Operations/50 {
		t.Fatalf("excessive errors: learned %d, static %d",
			res.Learned.Phase2.Errors, res.Static.Phase2.Errors)
	}
}

func TestRegroupValidation(t *testing.T) {
	spec := DefaultRegroupSpec()
	spec.MigrateTo = spec.HotKeys / 2 // overlaps the initial hot range
	if _, err := Regroup(spec, Options{}); err == nil {
		t.Fatal("overlapping migration accepted")
	}
	spec = DefaultRegroupSpec()
	spec.HotKeys = spec.TotalKeys
	if _, err := Regroup(spec, Options{}); err == nil {
		t.Fatal("degenerate key split accepted")
	}
}

// TestAdaptationLagMeasured runs the drifting scenario through the lag
// experiment: the regime change must be detected and timed.
func TestAdaptationLagMeasured(t *testing.T) {
	res, err := AdaptationLag(Drifting(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	if !res.Stable {
		t.Fatal("controller produced too few post-change decisions to judge")
	}
	if res.LagMs < 0 {
		t.Fatalf("lag = %.0fms", res.LagMs)
	}
	if res.Decisions == 0 {
		t.Fatal("no decisions recorded")
	}
	if res.RegimeChangeAtMs <= 0 || res.RegimeStableByMs <= res.RegimeChangeAtMs {
		t.Fatalf("regime anchors = %v/%v", res.RegimeChangeAtMs, res.RegimeStableByMs)
	}
	// A static scenario has no regime change to time.
	if _, err := AdaptationLag(Grid5000(), Options{}); err == nil {
		t.Fatal("lag measured on a scenario without a regime change")
	}
}

package cluster

import (
	"fmt"
	"testing"
	"time"

	"harmony/internal/client"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

// TestConcurrentWritesDifferentCoordinatorsConverge drives conflicting
// writes to one key through two different coordinators in the same virtual
// instant and verifies every replica converges to a single winner (last
// writer by coordinator timestamp, ties broken stably).
func TestConcurrentWritesDifferentCoordinatorsConverge(t *testing.T) {
	h := newHarness(t, DefaultSpec(), client.Options{Policy: client.Fixed{Write: wire.One}})
	reps := ring.ReplicasForKey(h.c.Ring, h.c.Strategy, []byte("cc"))

	var drvs []*client.Driver
	for i, coord := range []ring.NodeID{reps[0], reps[1]} {
		id := ring.NodeID(fmt.Sprintf("cw-%d", i))
		d, err := client.New(client.Options{ID: id, Coordinators: []ring.NodeID{coord}, Policy: client.Fixed{Write: wire.One}}, h.s, h.c.Bus)
		if err != nil {
			t.Fatal(err)
		}
		h.c.Bus.Register(id, h.s, d)
		drvs = append(drvs, d)
	}
	// Same-instant conflicting writes.
	done := 0
	drvs[0].Write([]byte("cc"), []byte("from-A"), func(r client.WriteResult) {
		if r.Err != nil {
			t.Errorf("A: %v", r.Err)
		}
		done++
	})
	drvs[1].Write([]byte("cc"), []byte("from-B"), func(r client.WriteResult) {
		if r.Err != nil {
			t.Errorf("B: %v", r.Err)
		}
		done++
	})
	h.s.RunFor(5 * time.Second)
	if done != 2 {
		t.Fatalf("only %d writes completed", done)
	}
	// All replicas hold the same winner with the same timestamp.
	var winner wire.Value
	for i, rid := range reps {
		v, ok := h.c.Node(rid).Engine().Get([]byte("cc"))
		if !ok {
			t.Fatalf("replica %s missing the key", rid)
		}
		if i == 0 {
			winner = v
			continue
		}
		if v.Timestamp != winner.Timestamp || string(v.Data) != string(winner.Data) {
			t.Fatalf("replica %s diverged: %q@%d vs %q@%d", rid, v.Data, v.Timestamp, winner.Data, winner.Timestamp)
		}
	}
	if s := string(winner.Data); s != "from-A" && s != "from-B" {
		t.Fatalf("winner = %q", s)
	}
	// A strong read agrees with the replicas.
	res := h.read(t, "cc", wire.All)
	if string(res.Value) != string(winner.Data) {
		t.Fatalf("ALL read %q disagrees with replica state %q", res.Value, winner.Data)
	}
}

// TestWriteTimeoutWhenQuorumUnreachable verifies the coordinator reports a
// timeout when the consistency level cannot be met, and that the write
// still converges on the reachable replicas (no rollback in Dynamo-style
// stores — the paper's model).
func TestWriteTimeoutWhenQuorumUnreachable(t *testing.T) {
	spec := DefaultSpec()
	spec.WriteTimeout = 200 * time.Millisecond
	h := newHarness(t, spec, client.Options{Policy: client.Fixed{Write: wire.All}, Timeout: 3 * time.Second})
	reps := ring.ReplicasForKey(h.c.Ring, h.c.Strategy, []byte("wt"))
	// Cut three of five replicas off from everything.
	for _, victim := range reps[2:] {
		h.c.Net.Isolate(victim, h.c.NodeIDs())
	}
	// Write through a coordinator that is itself reachable (the harness
	// driver round-robins over all nodes, including the isolated ones).
	wdrv, err := client.New(client.Options{ID: "wt-client", Coordinators: []ring.NodeID{reps[0]}, Policy: client.Fixed{Write: wire.All}, Timeout: 3 * time.Second}, h.s, h.c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	h.c.Bus.Register("wt-client", h.s, wdrv)
	var res client.WriteResult
	done := false
	wdrv.Write([]byte("wt"), []byte("v"), func(r client.WriteResult) { res = r; done = true })
	h.s.RunFor(5 * time.Second)
	if !done {
		t.Fatal("write never completed")
	}
	if res.Err == nil {
		t.Fatal("ALL write succeeded with 3/5 replicas unreachable")
	}
	// The reachable replicas still applied the mutation.
	h.s.RunFor(time.Second)
	applied := 0
	for _, rid := range reps[:2] {
		if v, ok := h.c.Node(rid).Engine().Get([]byte("wt")); ok && string(v.Data) == "v" {
			applied++
		}
	}
	if applied == 0 {
		t.Fatal("no reachable replica applied the failed-quorum write")
	}
}

// TestTombstonePropagatesToAllReplicas verifies deletes replicate like
// writes and win by timestamp on every replica.
func TestTombstonePropagatesToAllReplicas(t *testing.T) {
	h := newHarness(t, DefaultSpec(), client.Options{Policy: client.Fixed{Write: wire.One}})
	h.write(t, "tomb", "alive")
	h.s.RunFor(time.Second)
	var res client.WriteResult
	h.drv.Delete([]byte("tomb"), func(r client.WriteResult) { res = r })
	h.s.RunFor(2 * time.Second)
	if res.Err != nil {
		t.Fatalf("delete: %v", res.Err)
	}
	for _, rid := range ring.ReplicasForKey(h.c.Ring, h.c.Strategy, []byte("tomb")) {
		v, ok := h.c.Node(rid).Engine().Get([]byte("tomb"))
		if !ok || !v.Tombstone {
			t.Fatalf("replica %s: tombstone not applied (%+v ok=%v)", rid, v, ok)
		}
	}
}

// TestReadLevelClampsAboveReplicaCount verifies a THREE-level read against
// an RF=2 keyspace blocks for at most the available replicas instead of
// hanging.
func TestReadLevelClampsAboveReplicaCount(t *testing.T) {
	spec := DefaultSpec()
	spec.RF = 2
	s := sim.New(5)
	c, err := BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	drv, err := client.New(client.Options{ID: "clamp", Coordinators: c.NodeIDs(), Policy: client.Fixed{Write: wire.All}}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("clamp", s, drv)
	wrote := false
	drv.Write([]byte("k"), []byte("v"), func(r client.WriteResult) {
		if r.Err != nil {
			t.Errorf("write: %v", r.Err)
		}
		wrote = true
	})
	s.RunFor(2 * time.Second)
	if !wrote {
		t.Fatal("write did not complete")
	}
	var res client.ReadResult
	done := false
	drv.ReadAt([]byte("k"), wire.Three, func(r client.ReadResult) { res = r; done = true })
	s.RunFor(2 * time.Second)
	if !done || res.Err != nil || string(res.Value) != "v" {
		t.Fatalf("THREE read on RF=2 = %+v done=%v", res, done)
	}
}

// TestBlockingRepairAtAllDelaysResponse verifies the Fig. 1 strong-read
// behaviour directly: when a replica is stale, the ALL read's response
// arrives only after the repair round trip, and the replica is fresh by the
// time the client sees the answer.
func TestBlockingRepairAtAllDelaysResponse(t *testing.T) {
	spec := DefaultSpec()
	h := newHarness(t, spec, client.Options{Policy: client.Fixed{Write: wire.One}, Timeout: 10 * time.Second})
	h.write(t, "br", "v1")
	h.s.RunFor(time.Second)

	// Diverge one replica via partition.
	reps := ring.ReplicasForKey(h.c.Ring, h.c.Strategy, []byte("br"))
	victim := reps[len(reps)-1]
	h.c.Net.Isolate(victim, h.c.NodeIDs())
	h.write(t, "br", "v2")
	h.s.RunFor(time.Second)
	h.c.Net.Rejoin(victim, h.c.NodeIDs())

	var res client.ReadResult
	done := false
	h.drv.ReadAt([]byte("br"), wire.All, func(r client.ReadResult) { res = r; done = true })
	h.s.RunFor(5 * time.Second)
	if !done || res.Err != nil || string(res.Value) != "v2" {
		t.Fatalf("ALL read = %+v done=%v", res, done)
	}
	// By response time the stale replica must already hold v2: the repair
	// completed before the client answer (no extra quiesce time here).
	if v, ok := h.c.Node(victim).Engine().Get([]byte("br")); !ok || string(v.Data) != "v2" {
		t.Fatalf("victim not repaired before response: %q ok=%v", v.Data, ok)
	}
}

package client

import (
	"errors"
	"testing"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// fakeCoordinator records requests and lets tests script responses.
type fakeCoordinator struct {
	bus      *transport.Loopback
	id       ring.NodeID
	requests []wire.Message
	// respond maps request IDs to canned replies sent synchronously.
	respond func(m wire.Message) wire.Message
}

func (f *fakeCoordinator) Deliver(from ring.NodeID, m wire.Message) {
	f.requests = append(f.requests, m)
	if f.respond != nil {
		if reply := f.respond(m); reply != nil {
			f.bus.Send(f.id, from, reply)
		}
	}
}

func newFixture(t *testing.T, respond func(wire.Message) wire.Message) (*sim.Sim, *Driver, *fakeCoordinator) {
	t.Helper()
	s := sim.New(1)
	bus := transport.NewLoopback()
	co := &fakeCoordinator{bus: bus, id: "coord", respond: respond}
	bus.Register("coord", co)
	drv, err := New(Options{ID: "cl", Coordinators: []ring.NodeID{"coord"}, Timeout: 100 * time.Millisecond}, s, bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("cl", drv)
	return s, drv, co
}

func TestDriverValidation(t *testing.T) {
	s := sim.New(1)
	if _, err := New(Options{ID: "x"}, s, transport.NewLoopback()); err == nil {
		t.Fatal("no coordinators accepted")
	}
}

func TestReadSuccess(t *testing.T) {
	s, drv, _ := newFixture(t, func(m wire.Message) wire.Message {
		req := m.(wire.ReadRequest)
		return wire.ReadResponse{ID: req.ID, Found: true, Value: wire.Value{Data: []byte("v"), Timestamp: 9}, Achieved: wire.Quorum}
	})
	var got ReadResult
	drv.ReadAt([]byte("k"), wire.Quorum, func(r ReadResult) { got = r })
	s.RunUntilIdle(100)
	if got.Err != nil || !got.Found || string(got.Value) != "v" || got.Ts != 9 || got.Achieved != wire.Quorum {
		t.Fatalf("read = %+v", got)
	}
	if drv.Pending() != 0 {
		t.Fatal("pending leaked")
	}
}

func TestWriteAndDelete(t *testing.T) {
	var sawDelete bool
	s, drv, _ := newFixture(t, func(m wire.Message) wire.Message {
		req := m.(wire.WriteRequest)
		if req.Delete {
			sawDelete = true
		}
		return wire.WriteResponse{ID: req.ID, OK: true, Timestamp: 77}
	})
	var got WriteResult
	drv.Write([]byte("k"), []byte("v"), func(r WriteResult) { got = r })
	s.RunUntilIdle(100)
	if got.Err != nil || got.Ts != 77 {
		t.Fatalf("write = %+v", got)
	}
	drv.Delete([]byte("k"), func(WriteResult) {})
	s.RunUntilIdle(100)
	if !sawDelete {
		t.Fatal("delete flag not sent")
	}
}

func TestTimeoutWhenNoReply(t *testing.T) {
	s, drv, _ := newFixture(t, nil) // coordinator never answers
	var got ReadResult
	drv.ReadAt([]byte("k"), wire.One, func(r ReadResult) { got = r })
	s.RunUntilIdle(100)
	if !errors.Is(got.Err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", got.Err)
	}
	if drv.Pending() != 0 {
		t.Fatal("pending leaked after timeout")
	}
}

func TestServerErrorMapping(t *testing.T) {
	s, drv, _ := newFixture(t, func(m wire.Message) wire.Message {
		req := m.(wire.ReadRequest)
		return wire.Error{ID: req.ID, Code: wire.ErrUnavailable, Msg: "no replicas"}
	})
	var got ReadResult
	drv.ReadAt([]byte("k"), wire.One, func(r ReadResult) { got = r })
	s.RunUntilIdle(100)
	if !errors.Is(got.Err, ErrUnavailable) {
		t.Fatalf("err = %v, want unavailable", got.Err)
	}
}

func TestPolicyConsulted(t *testing.T) {
	var levels []wire.ConsistencyLevel
	s := sim.New(1)
	bus := transport.NewLoopback()
	co := &fakeCoordinator{bus: bus, id: "coord"}
	co.respond = func(m wire.Message) wire.Message {
		req := m.(wire.ReadRequest)
		levels = append(levels, req.Level)
		return wire.ReadResponse{ID: req.ID}
	}
	bus.Register("coord", co)
	lvl := wire.One
	src := policyFunc(func([]byte) (wire.ConsistencyLevel, wire.ConsistencyLevel) { return lvl, wire.One })
	drv, err := New(Options{ID: "cl", Coordinators: []ring.NodeID{"coord"}, Policy: src}, s, bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("cl", drv)
	drv.Read([]byte("k"), func(ReadResult) {})
	lvl = wire.Quorum // the adaptive controller raised the level
	drv.Read([]byte("k"), func(ReadResult) {})
	s.RunUntilIdle(100)
	if len(levels) != 2 || levels[0] != wire.One || levels[1] != wire.Quorum {
		t.Fatalf("levels = %v", levels)
	}
}

type policyFunc func(key []byte) (read, write wire.ConsistencyLevel)

func (f policyFunc) LevelsFor(key []byte) (read, write wire.ConsistencyLevel) { return f(key) }

func TestShadowSampling(t *testing.T) {
	var shadows []bool
	s := sim.New(1)
	bus := transport.NewLoopback()
	co := &fakeCoordinator{bus: bus, id: "coord"}
	co.respond = func(m wire.Message) wire.Message {
		req := m.(wire.ReadRequest)
		shadows = append(shadows, req.Shadow)
		return wire.ReadResponse{ID: req.ID}
	}
	bus.Register("coord", co)
	drv, err := New(Options{ID: "cl", Coordinators: []ring.NodeID{"coord"}, ShadowEvery: 3}, s, bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("cl", drv)
	for i := 0; i < 9; i++ {
		drv.Read([]byte("k"), func(ReadResult) {})
	}
	s.RunUntilIdle(1000)
	count := 0
	for _, sh := range shadows {
		if sh {
			count++
		}
	}
	if count != 3 {
		t.Fatalf("shadow count = %d of 9 with ShadowEvery=3", count)
	}
}

func TestRoundRobinCoordinators(t *testing.T) {
	s := sim.New(1)
	bus := transport.NewLoopback()
	var hits []ring.NodeID
	for _, id := range []ring.NodeID{"c1", "c2", "c3"} {
		id := id
		bus.Register(id, transport.HandlerFunc(func(from ring.NodeID, m wire.Message) {
			hits = append(hits, id)
		}))
	}
	drv, err := New(Options{ID: "cl", Coordinators: []ring.NodeID{"c1", "c2", "c3"}, Timeout: time.Millisecond}, s, bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("cl", drv)
	for i := 0; i < 6; i++ {
		drv.Read([]byte("k"), func(ReadResult) {})
	}
	s.RunUntilIdle(1000)
	want := []ring.NodeID{"c1", "c2", "c3", "c1", "c2", "c3"}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v", hits)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("round robin order = %v", hits)
		}
	}
}

func TestVerifyRead(t *testing.T) {
	// First (primary) read returns ts=5; strong read returns ts=9 -> stale.
	call := 0
	s, drv, _ := newFixture(t, func(m wire.Message) wire.Message {
		req := m.(wire.ReadRequest)
		call++
		ts := int64(5)
		if req.Level == wire.All {
			ts = 9
		}
		return wire.ReadResponse{ID: req.ID, Found: true, Value: wire.Value{Data: []byte("v"), Timestamp: ts}}
	})
	var stale bool
	var primary ReadResult
	drv.VerifyRead([]byte("k"), func(p ReadResult, st bool) { primary = p; stale = st })
	s.RunUntilIdle(100)
	if call != 2 {
		t.Fatalf("verify issued %d reads, want 2", call)
	}
	if primary.Ts != 5 || !stale {
		t.Fatalf("primary=%+v stale=%v, want stale", primary, stale)
	}
}

func TestVerifyReadFresh(t *testing.T) {
	s, drv, _ := newFixture(t, func(m wire.Message) wire.Message {
		req := m.(wire.ReadRequest)
		return wire.ReadResponse{ID: req.ID, Found: true, Value: wire.Value{Timestamp: 9}}
	})
	var stale bool
	drv.VerifyRead([]byte("k"), func(_ ReadResult, st bool) { stale = st })
	s.RunUntilIdle(100)
	if stale {
		t.Fatal("equal timestamps flagged stale")
	}
}

func TestPerKeyPolicyChoosesLevels(t *testing.T) {
	var got []wire.ConsistencyLevel
	s := sim.New(1)
	bus := transport.NewLoopback()
	co := &fakeCoordinator{bus: bus, id: "coord"}
	co.respond = func(m wire.Message) wire.Message {
		req := m.(wire.ReadRequest)
		got = append(got, req.Level)
		return wire.ReadResponse{ID: req.ID}
	}
	bus.Register("coord", co)
	drv, err := New(Options{
		ID:           "cl",
		Coordinators: []ring.NodeID{"coord"},
		Policy: policyFunc(func(key []byte) (wire.ConsistencyLevel, wire.ConsistencyLevel) {
			if string(key) == "hot" {
				return wire.All, wire.One // the hot category demands ALL
			}
			return wire.One, wire.One
		}),
	}, s, bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("cl", drv)
	drv.Read([]byte("hot"), func(ReadResult) {})
	drv.Read([]byte("cold"), func(ReadResult) {})
	s.RunUntilIdle(100)
	if len(got) != 2 || got[0] != wire.All || got[1] != wire.One {
		t.Fatalf("levels = %v, want [ALL ONE]", got)
	}
	// Explicit ReadAt bypasses the policy.
	drv.ReadAt([]byte("hot"), wire.Two, func(ReadResult) {})
	s.RunUntilIdle(100)
	if got[2] != wire.Two {
		t.Fatalf("explicit level = %v", got[2])
	}
}

// TestPolicyConsistentAcrossEpochSwap pins the driver half of the
// regrouping contract: levels are resolved from the ConsistencyPolicy at
// issue time, per operation, with nothing cached — so when the policy's
// grouping swaps to a new epoch between two reads, the second read
// immediately sees the new epoch's level for its key.
func TestPolicyConsistentAcrossEpochSwap(t *testing.T) {
	var got []wire.ConsistencyLevel
	s := sim.New(1)
	bus := transport.NewLoopback()
	co := &fakeCoordinator{bus: bus, id: "coord"}
	co.respond = func(m wire.Message) wire.Message {
		req := m.(wire.ReadRequest)
		got = append(got, req.Level)
		return wire.ReadResponse{ID: req.ID}
	}
	bus.Register("coord", co)
	// An epoch-swappable source: before the swap key "k" is cold (ONE),
	// after it the same key is classified hot (QUORUM).
	epoch := 0
	src := policyFunc(func(key []byte) (wire.ConsistencyLevel, wire.ConsistencyLevel) {
		if epoch >= 1 && string(key) == "k" {
			return wire.Quorum, wire.One
		}
		return wire.One, wire.One
	})
	drv, err := New(Options{ID: "cl", Coordinators: []ring.NodeID{"coord"}, Policy: src}, s, bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("cl", drv)
	drv.Read([]byte("k"), func(ReadResult) {})
	s.RunUntilIdle(100)
	epoch = 1 // the regrouping subsystem swapped assignments
	drv.Read([]byte("k"), func(ReadResult) {})
	drv.Read([]byte("other"), func(ReadResult) {})
	s.RunUntilIdle(100)
	if len(got) != 3 || got[0] != wire.One || got[1] != wire.Quorum || got[2] != wire.One {
		t.Fatalf("levels = %v, want [ONE QUORUM ONE] across the epoch swap", got)
	}
}

// keyedWriteLevels ships writes of keys with an "h" prefix at QUORUM.
type keyedWriteLevels struct{}

func (keyedWriteLevels) LevelsFor(key []byte) (read, write wire.ConsistencyLevel) {
	if len(key) > 0 && key[0] == 'h' {
		return wire.One, wire.Quorum
	}
	return wire.One, wire.One
}

func TestPolicyChoosesPerKeyWriteLevel(t *testing.T) {
	s := sim.New(1)
	bus := transport.NewLoopback()
	co := &fakeCoordinator{bus: bus, id: "coord", respond: func(m wire.Message) wire.Message {
		req := m.(wire.WriteRequest)
		return wire.WriteResponse{ID: req.ID, OK: true, Timestamp: 1}
	}}
	bus.Register("coord", co)
	drv, err := New(Options{
		ID:           "cl",
		Coordinators: []ring.NodeID{"coord"},
		Policy:       keyedWriteLevels{},
		Timeout:      100 * time.Millisecond,
	}, s, bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("cl", drv)
	drv.Write([]byte("hot1"), []byte("v"), func(WriteResult) {})
	drv.Write([]byte("cold1"), []byte("v"), func(WriteResult) {})
	s.RunUntilIdle(100)
	if len(co.requests) != 2 {
		t.Fatalf("coordinator saw %d requests, want 2", len(co.requests))
	}
	if lvl := co.requests[0].(wire.WriteRequest).Level; lvl != wire.Quorum {
		t.Fatalf("hot write shipped at %v, want QUORUM", lvl)
	}
	if lvl := co.requests[1].(wire.WriteRequest).Level; lvl != wire.One {
		t.Fatalf("cold write shipped at %v, want ONE", lvl)
	}
}

module harmony

go 1.24

package client

import (
	"hash/maphash"

	"harmony/internal/versioning"
	"harmony/internal/wire"
)

// sessionBuckets is the token-table width: keys hash onto this many
// key-range buckets, each holding one high-water vector clock. More buckets
// mean fewer cross-key watermark collisions (a hot neighbor inflating the
// token another key's reads must satisfy) at a few words per bucket.
const sessionBuckets = 64

// Session is the client's documented entry point: Driver operations wrapped
// with session guarantees. It maintains compact session tokens — one
// high-water vector clock per key-range bucket, folded from every
// acknowledged write and observed read — and attaches them to reads issued
// at wire.Session, where the coordinator must answer with a version covering
// the token (read-your-writes + monotonic reads, usually at single-replica
// cost).
//
// A Session works over ANY policy. At levels other than wire.Session the
// cluster enforces nothing, but the Session still tracks what it has seen
// and counts violations (Regressions): a Session over a ONE policy is the
// measurement arm showing what SESSION would have prevented.
//
// Like the Driver it wraps, a Session must be used from the driver's runtime
// context; callbacks run there too.
type Session struct {
	d       *Driver
	seed    maphash.Seed
	buckets [sessionBuckets]versioning.Clock
	// lastSeen is the per-key high-water timestamp of everything this
	// session wrote or read, the ground truth Regressions is judged
	// against.
	lastSeen    map[string]int64
	reads       uint64
	writes      uint64
	regressions uint64
}

// NewSession wraps a driver. Multiple sessions over one driver are
// independent: each carries its own tokens and guarantees.
func NewSession(d *Driver) *Session {
	return &Session{d: d, seed: maphash.MakeSeed(), lastSeen: make(map[string]int64)}
}

// Driver exposes the wrapped low-level driver.
func (s *Session) Driver() *Driver { return s.d }

func (s *Session) bucket(key []byte) *versioning.Clock {
	return &s.buckets[maphash.Bytes(s.seed, key)%sessionBuckets]
}

// observe folds an operation's outcome into the session state: the version
// clock raises the key range's token, the timestamp raises the per-key
// watermark. A read answering below the watermark is a regression — the
// session had already seen (or written) something newer.
func (s *Session) observe(key []byte, ts int64, clock []wire.ClockEntry, isRead bool) {
	b := s.bucket(key)
	if len(clock) > 0 {
		*b = versioning.Merge(*b, versioning.Clock(clock))
	} else if ts > 0 {
		// Legacy clock-less value: keep the watermark honest anyway.
		*b = versioning.Stamp(*b, "", uint64(ts))
	}
	k := string(key)
	if isRead && ts < s.lastSeen[k] {
		s.regressions++
	}
	if ts > s.lastSeen[k] {
		s.lastSeen[k] = ts
	}
}

// Read fetches key at the policy's read level, carrying the session token
// when that level is wire.Session.
func (s *Session) Read(key []byte, cb func(ReadResult)) {
	level, _ := s.d.opts.Policy.LevelsFor(key)
	s.ReadAt(key, level, cb)
}

// ReadAt fetches key at an explicit level under the session's guarantees.
func (s *Session) ReadAt(key []byte, level wire.ConsistencyLevel, cb func(ReadResult)) {
	var token []wire.ClockEntry
	if level == wire.Session {
		token = []wire.ClockEntry(*s.bucket(key))
	}
	s.reads++
	s.d.ReadToken(key, level, token, func(res ReadResult) {
		if res.Err == nil {
			s.observe(key, res.Ts, res.Clock, true)
		}
		cb(res)
	})
}

// Write stores value under key and folds the acknowledged write's clock into
// the session token, so subsequent SESSION reads observe it.
func (s *Session) Write(key, value []byte, cb func(WriteResult)) {
	s.writes++
	s.d.Write(key, value, func(res WriteResult) {
		if res.Err == nil {
			s.observe(key, res.Ts, res.Clock, false)
		}
		cb(res)
	})
}

// Delete removes key (tombstone write) under the session's guarantees.
func (s *Session) Delete(key []byte, cb func(WriteResult)) {
	s.writes++
	s.d.Delete(key, func(res WriteResult) {
		if res.Err == nil {
			s.observe(key, res.Ts, res.Clock, false)
		}
		cb(res)
	})
}

// Regressions reports how many reads answered with a version older than one
// this session had already written or read — the violations SESSION level
// exists to prevent. A session running at wire.Session must report zero; a
// session observing a ONE policy reports what weak reads let through.
func (s *Session) Regressions() uint64 { return s.regressions }

// Ops reports the session's completed-or-issued read and write counts.
func (s *Session) Ops() (reads, writes uint64) { return s.reads, s.writes }

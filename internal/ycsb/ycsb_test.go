package ycsb

import (
	"math/rand"
	"testing"
	"time"

	"harmony/internal/client"
	"harmony/internal/cluster"
	"harmony/internal/dist"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

func TestWorkloadPresetsValid(t *testing.T) {
	for name, w := range Presets() {
		if err := w.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if _, err := w.chooser(); err != nil {
			t.Errorf("preset %s chooser: %v", name, err)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	w := WorkloadA()
	w.ReadProportion = 0.9 // now sums to 1.4
	if err := w.Validate(); err == nil {
		t.Fatal("bad proportions accepted")
	}
	w = WorkloadA()
	w.RecordCount = 0
	if err := w.Validate(); err == nil {
		t.Fatal("zero records accepted")
	}
	w = WorkloadA()
	w.ValueBytes = 0
	if err := w.Validate(); err == nil {
		t.Fatal("zero value size accepted")
	}
	bad := Workload{Name: "x", ReadProportion: 1, RecordCount: 10, ValueBytes: 8, RequestDistribution: "mystery"}
	if _, err := bad.chooser(); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestKeyFormat(t *testing.T) {
	if got := string(Key(42)); got != "user0000000042" {
		t.Fatalf("key = %q", got)
	}
}

func TestOpTypeString(t *testing.T) {
	if OpRead.String() != "read" || OpReadModifyWrite.String() != "read-modify-write" {
		t.Fatal("op names")
	}
}

// smallSpec keeps test runs quick: 2 racks x 3 nodes, RF=3, tiny records.
func smallSpec() cluster.Spec {
	spec := cluster.DefaultSpec()
	spec.RacksPerDC = 2
	spec.NodesPerRack = 3
	spec.RF = 3
	return spec
}

func smallWorkload(w Workload) Workload {
	w.RecordCount = 500
	w.ValueBytes = 128
	return w
}

func newRunner(t *testing.T, cfg RunConfig) (*sim.Sim, *cluster.Cluster, *Runner) {
	t.Helper()
	s := sim.New(cfg.Seed + 1)
	c, err := cluster.BuildSim(s, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(cfg, s, c)
	if err != nil {
		t.Fatal(err)
	}
	r.Load()
	return s, c, r
}

func TestRunnerCompletesOpBudget(t *testing.T) {
	_, _, r := newRunner(t, RunConfig{
		Workload:   smallWorkload(WorkloadA()),
		Threads:    8,
		Operations: 2000,
		Seed:       42,
	})
	rep, err := r.RunOps()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Operations < 2000 {
		t.Fatalf("completed %d ops, want >= 2000", rep.Operations)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors", rep.Errors)
	}
	if rep.ThroughputOps <= 0 {
		t.Fatal("no throughput")
	}
	// Workload A is 50/50: both op kinds must appear in sensible ratio.
	if rep.Reads == 0 || rep.Updates == 0 {
		t.Fatalf("reads=%d updates=%d", rep.Reads, rep.Updates)
	}
	ratio := float64(rep.Reads) / float64(rep.Reads+rep.Updates)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("read ratio = %v, want ~0.5", ratio)
	}
	if rep.ReadLatency.Count() == 0 || rep.UpdateLatency.Count() == 0 {
		t.Fatal("latency histograms empty")
	}
}

func TestRunnerWorkloadBMix(t *testing.T) {
	_, _, r := newRunner(t, RunConfig{
		Workload:   smallWorkload(WorkloadB()),
		Threads:    4,
		Operations: 2000,
		Seed:       7,
	})
	rep, err := r.RunOps()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rep.Reads) / float64(rep.Reads+rep.Updates)
	if ratio < 0.9 {
		t.Fatalf("workload B read ratio = %v, want ~0.95", ratio)
	}
}

func TestRunnerLoadPopulatesAllReplicas(t *testing.T) {
	s, c, _ := newRunner(t, RunConfig{
		Workload: smallWorkload(WorkloadC()),
		Threads:  1,
		Seed:     9,
	})
	_ = s
	// Spot-check that a loaded key reads back at ALL.
	drv, err := client.New(client.Options{ID: "check", Coordinators: c.NodeIDs()}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("check", s, drv)
	var res client.ReadResult
	done := false
	drv.ReadAt(Key(123), wire.All, func(rr client.ReadResult) { res = rr; done = true })
	s.RunFor(5 * time.Second)
	if !done || res.Err != nil || !res.Found {
		t.Fatalf("loaded key not readable at ALL: %+v done=%v", res, done)
	}
	if len(res.Value) != 128 {
		t.Fatalf("value size = %d, want 128", len(res.Value))
	}
}

func TestRunnerPhases(t *testing.T) {
	s, _, r := newRunner(t, RunConfig{
		Workload: smallWorkload(WorkloadA()),
		Threads:  8,
		Seed:     3,
	})
	r.Start()
	s.RunFor(2 * time.Second)
	atFull := r.Completed()
	if atFull == 0 {
		t.Fatal("no ops at 8 threads")
	}
	r.SetActiveThreads(1)
	s.RunFor(2 * time.Second)
	atOne := r.Completed() - atFull
	if atOne == 0 {
		t.Fatal("no ops at 1 thread")
	}
	// Throughput with 1 thread must be well below 8 threads.
	if float64(atOne) > 0.7*float64(atFull) {
		t.Fatalf("throttling had no effect: %d vs %d", atOne, atFull)
	}
	// Scale back up: parked threads must wake.
	r.SetActiveThreads(8)
	s.RunFor(2 * time.Second)
	atFull2 := r.Completed() - atFull - atOne
	if float64(atFull2) < 2*float64(atOne) {
		t.Fatalf("threads did not resume: %d vs %d", atFull2, atOne)
	}
	r.Stop()
	r.Drain()
}

func TestRunnerStopParksThreads(t *testing.T) {
	s, _, r := newRunner(t, RunConfig{
		Workload: smallWorkload(WorkloadA()),
		Threads:  4,
		Seed:     5,
	})
	r.Start()
	s.RunFor(time.Second)
	r.Stop()
	r.Drain()
	done := r.Completed()
	s.RunFor(5 * time.Second)
	if r.Completed() != done {
		t.Fatalf("ops continued after Stop: %d -> %d", done, r.Completed())
	}
}

func TestRunnerShadowMeasuresStaleness(t *testing.T) {
	// Workload A at ONE with shadow probes on an update-heavy mix must
	// observe some staleness (the paper's premise).
	_, _, r := newRunner(t, RunConfig{
		Workload:    smallWorkload(WorkloadA()),
		Threads:     16,
		Operations:  6000,
		Seed:        11,
		ShadowEvery: 1,
		Policy:      client.Fixed{},
	})
	rep, err := r.RunOps()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShadowSamples == 0 {
		t.Fatal("no shadow samples")
	}
	if rep.StaleReads == 0 {
		t.Fatal("update-heavy eventual-consistency run measured zero stale reads")
	}
	if f := rep.StaleFraction(); f <= 0 || f > 1 {
		t.Fatalf("stale fraction = %v", f)
	}
}

func TestRunnerStrongConsistencyZeroStale(t *testing.T) {
	_, _, r := newRunner(t, RunConfig{
		Workload:    smallWorkload(WorkloadA()),
		Threads:     16,
		Operations:  3000,
		Seed:        13,
		ShadowEvery: 1,
		Policy:      client.Fixed{Read: wire.All},
	})
	rep, err := r.RunOps()
	if err != nil {
		t.Fatal(err)
	}
	if rep.StaleReads != 0 {
		t.Fatalf("strong consistency measured %d stale reads", rep.StaleReads)
	}
}

func TestRunnerRejectsBadConfig(t *testing.T) {
	s := sim.New(1)
	c, err := cluster.BuildSim(s, smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(RunConfig{Workload: smallWorkload(WorkloadA()), Threads: 0}, s, c); err == nil {
		t.Fatal("threads=0 accepted")
	}
	bad := smallWorkload(WorkloadA())
	bad.ReadProportion = 2
	if _, err := NewRunner(RunConfig{Workload: bad, Threads: 1}, s, c); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestRunnerInsertGrowsKeyspace(t *testing.T) {
	_, _, r := newRunner(t, RunConfig{
		Workload:   smallWorkload(WorkloadD()),
		Threads:    4,
		Operations: 2000,
		Seed:       17,
	})
	before := r.inserted
	rep, err := r.RunOps()
	if err != nil {
		t.Fatal(err)
	}
	if r.inserted <= before {
		t.Fatal("inserts did not grow the keyspace")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors", rep.Errors)
	}
}

func TestRunnerRMWDoesBoth(t *testing.T) {
	_, _, r := newRunner(t, RunConfig{
		Workload:   smallWorkload(WorkloadF()),
		Threads:    4,
		Operations: 1000,
		Seed:       19,
	})
	rep, err := r.RunOps()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads == 0 || rep.Updates == 0 {
		t.Fatalf("RMW mix: reads=%d updates=%d", rep.Reads, rep.Updates)
	}
	// F is 50% read + 50% RMW. Every RMW performs one read and one update,
	// so sub-operation counts are reads ≈ N and updates ≈ N/2: ratio ~2.
	ratio := float64(rep.Reads) / float64(rep.Updates)
	if ratio < 1.6 || ratio > 2.5 {
		t.Fatalf("read:update ratio = %v, want ~2", ratio)
	}
}

func TestChooseOpDistribution(t *testing.T) {
	r := &Runner{cfg: RunConfig{Workload: WorkloadA()}}
	rng := rand.New(rand.NewSource(1))
	counts := map[OpType]int{}
	for i := 0; i < 10000; i++ {
		counts[r.chooseOp(rng)]++
	}
	if counts[OpRead] < 4500 || counts[OpRead] > 5500 {
		t.Fatalf("read count = %d, want ~5000", counts[OpRead])
	}
	if counts[OpInsert] != 0 || counts[OpReadModifyWrite] != 0 {
		t.Fatalf("unexpected op kinds: %v", counts)
	}
}

func TestKeyIndexRoundTrip(t *testing.T) {
	for _, i := range []int64{0, 1, 99, 100_000, 9_999_999_999} {
		got, ok := KeyIndex(Key(i))
		if !ok || got != i {
			t.Fatalf("KeyIndex(Key(%d)) = %d, %v", i, got, ok)
		}
	}
	for _, bad := range [][]byte{nil, []byte("user"), []byte("userX000000001"), []byte("customer1")} {
		if _, ok := KeyIndex(bad); ok {
			t.Fatalf("KeyIndex(%q) accepted", bad)
		}
	}
}

func TestRunnerOpenLoopPoissonRate(t *testing.T) {
	// Open loop: the offered rate is the configured arrival rate, not a
	// function of completions.
	const rate = 1000.0
	s, _, r := newRunner(t, RunConfig{
		Workload:    smallWorkload(WorkloadA()),
		Threads:     8,
		Seed:        7,
		ArrivalRate: rate,
	})
	r.Start()
	s.RunFor(4 * time.Second)
	r.Stop()
	r.Drain()
	rep := r.Report()
	if rep.ThroughputOps < rate*0.9 || rep.ThroughputOps > rate*1.1 {
		t.Fatalf("open-loop throughput = %.0f ops/s, want ~%.0f", rep.ThroughputOps, rate)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors", rep.Errors)
	}
}

func TestRunnerOpenLoopIgnoresThreadParking(t *testing.T) {
	// SetActiveThreads is a closed-loop concept; the Poisson process keeps
	// offering load regardless.
	s, _, r := newRunner(t, RunConfig{
		Workload:    smallWorkload(WorkloadA()),
		Threads:     4,
		Seed:        9,
		ArrivalRate: 500,
	})
	r.Start()
	r.SetActiveThreads(0)
	s.RunFor(2 * time.Second)
	r.Stop()
	r.Drain()
	if c := r.Completed(); c < 800 {
		t.Fatalf("open loop issued only %d ops with parked threads", c)
	}
}

func TestRunnerReportsGroupStaleness(t *testing.T) {
	spec := smallSpec()
	spec.Groups = 2
	spec.GroupFn = func(key []byte) int {
		if idx, ok := KeyIndex(key); ok && idx < 100 {
			return 0
		}
		return 1
	}
	s := sim.New(11)
	c, err := cluster.BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(RunConfig{
		Workload:    smallWorkload(WorkloadA()),
		Threads:     8,
		Operations:  3000,
		Seed:        11,
		ShadowEvery: 2,
	}, s, c)
	if err != nil {
		t.Fatal(err)
	}
	r.Load()
	rep, err := r.RunOps()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 2 {
		t.Fatalf("groups in report = %d, want 2", len(rep.Groups))
	}
	var reads, writes, samples, stale uint64
	for _, g := range rep.Groups {
		reads += g.Reads
		writes += g.Writes
		samples += g.ShadowSamples
		stale += g.StaleReads
	}
	m := c.AggregateMetrics()
	if reads != m.Reads || writes != m.Writes {
		t.Fatalf("group ops (%d r, %d w) do not partition totals (%d r, %d w)", reads, writes, m.Reads, m.Writes)
	}
	if samples != rep.ShadowSamples || stale != rep.StaleReads {
		t.Fatalf("group probes (%d/%d) do not partition totals (%d/%d)", stale, samples, rep.StaleReads, rep.ShadowSamples)
	}
	// Zipfian traffic concentrates on low indices: group 0 (first 100
	// keys) must have seen a healthy share of the traffic.
	if rep.Groups[0].Reads == 0 || rep.Groups[1].Reads == 0 {
		t.Fatalf("degenerate group split: %+v", rep.Groups)
	}
}

func TestRunnerPolicyShapesEveryRead(t *testing.T) {
	// A policy forcing ALL must shape every coordinated read.
	s, c, r := newRunner(t, RunConfig{
		Workload:   smallWorkload(WorkloadA()),
		Threads:    4,
		Operations: 500,
		Seed:       13,
		Policy:     allReads{},
	})
	_ = s
	if _, err := r.RunOps(); err != nil {
		t.Fatal(err)
	}
	m := c.AggregateMetrics()
	if m.LevelUse[wire.One] != 0 || m.LevelUse[wire.All] == 0 {
		t.Fatalf("policy ignored: level use = %v", m.LevelUse)
	}
}

type allReads struct{}

func (allReads) LevelsFor([]byte) (read, write wire.ConsistencyLevel) { return wire.All, wire.One }

func TestRunnerThinkTimeThrottles(t *testing.T) {
	run := func(think dist.Sampler) int64 {
		s, _, r := newRunner(t, RunConfig{
			Workload:  smallWorkload(WorkloadA()),
			Threads:   4,
			Seed:      23,
			ThinkTime: think,
		})
		r.Start()
		s.RunFor(4 * time.Second)
		r.Stop()
		r.Drain()
		return r.Completed()
	}
	// A 50ms constant think time bounds each thread near 20 ops/s: with 4
	// threads over 4 virtual seconds the ceiling is 320 ops.
	throttled := run(dist.Constant{V: 0.05})
	if throttled == 0 || throttled > 330 {
		t.Fatalf("think-time run completed %d ops, want (0, 330]", throttled)
	}
	unthrottled := run(nil)
	if unthrottled < 4*throttled {
		t.Fatalf("think time had no effect: %d vs %d ops", unthrottled, throttled)
	}
	// Stochastic gaps must behave the same in expectation.
	poisson := run(dist.NewExponential(0.05))
	if poisson == 0 || poisson > 500 {
		t.Fatalf("poisson think-time run completed %d ops", poisson)
	}
}

func TestRunnerSessionMode(t *testing.T) {
	// Session mode over a SESSION policy: every coordinated read is
	// token-checked and no session may observe a version regression.
	_, c, r := newRunner(t, RunConfig{
		Workload:   smallWorkload(WorkloadA()),
		Threads:    8,
		Operations: 2000,
		Seed:       17,
		Policy:     client.Fixed{Read: wire.Session},
		Sessions:   true,
	})
	rep, err := r.RunOps()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SessionRegressions != 0 {
		t.Fatalf("SESSION run observed %d regressions", rep.SessionRegressions)
	}
	m := c.AggregateMetrics()
	if m.LevelUse[wire.Session] == 0 {
		t.Fatal("no reads coordinated at SESSION")
	}
	if rep.LevelUse[wire.Session] == 0 {
		t.Fatal("report missed the SESSION level tally")
	}
}

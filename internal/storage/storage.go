// Package storage implements a node-local storage engine with the write
// path the paper describes for Cassandra (§II-B): a mutation is appended to
// a commit log and applied to an in-memory table before it is acknowledged;
// memtables are periodically frozen and flushed to immutable tables that
// reads merge with last-writer-wins timestamp reconciliation.
//
// The engine is deliberately log-structured like Cassandra's, but flushed
// tables live in memory by default (the simulator runs thousands of node
// instances). For the real TCP deployment Options.Persist slots a
// bitcask-style durable backend behind the same sharded interface: each
// shard keeps an append-only log of CRC-framed records plus an in-memory
// key→offset index, with group-commit fsync batching and crash recovery
// from hint files + tail replay (see bitcask.go). The legacy file-backed
// commit log remains for callers that only want a replayable journal.
//
// The engine is lock-striped: keys hash onto N independent shards, each
// with its own mutex, memtable, and flushed tables, so concurrent
// operations on different shards never contend and a flush or compaction
// freezes one shard instead of stopping the world. Within a shard the
// engine maintains the invariant that the memtable always holds the newest
// visible version of a key and later tables shadow earlier ones, so a
// lookup probes the memtable and then tables newest-first, stopping at the
// first hit.
package storage

import (
	"fmt"
	"hash/maphash"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"sync"

	"harmony/internal/versioning"
	"harmony/internal/wire"
)

// maxShards bounds the stripe count (shard state is ~page-sized once maps
// warm up, and past the core count more stripes only dilute memtables).
const maxShards = 128

// shard is one lock stripe: an independent memtable plus flushed tables.
// The lock is a plain mutex, not an RWMutex: with operations spread over
// the stripes, intra-shard reader concurrency buys little, while the
// RWMutex write path costs roughly twice the atomic read-modify-writes per
// Apply (measured ~20% of the write hot path). All counters mutate under
// mu. The struct is padded to its own cache lines so one shard's hot mutex
// never false-shares with a neighbor's.
type shard struct {
	mu       sync.Mutex
	memtable map[string]*wire.Value
	memBytes int
	tables   []*table
	disk     *diskShard // non-nil iff the engine was opened with Options.Persist

	reads     uint64
	writes    uint64
	flushes   uint64
	compacted uint64
	siblings  uint64 // concurrent versions settled by the resolver

	_ [32]byte // pad to 128 bytes
}

// table is an immutable flushed memtable with sorted keys for scans.
type table struct {
	keys []string
	vals map[string]*wire.Value
}

// Engine is a single replica's storage. It is safe for concurrent use.
type Engine struct {
	shards    []shard
	mask      uint64 // len(shards)-1; shard selection is hash&mask
	seed      maphash.Seed
	flushAt   int // per-shard freeze threshold in bytes
	maxTables int // per-shard compaction trigger
	log       CommitLog
	resolver  versioning.Resolver
	onApply   func(key []byte, v wire.Value)
	onReplace func(key []byte, old wire.Value, hadOld bool, v wire.Value)
	persist   *persistState // nil for the in-memory engine
	scanPool  sync.Pool     // *scanScratch, reused across Scan/ScanVersions
}

// Options configure an Engine.
type Options struct {
	// Shards is the lock-stripe count, rounded up to a power of two and
	// capped at 128; <=0 picks a power of two a small multiple above
	// GOMAXPROCS (see defaultShards). One shard reproduces the classic
	// single-lock engine exactly.
	Shards int
	// FlushThresholdBytes freezes a memtable after this much data across
	// the whole engine (each shard freezes at its 1/Shards slice);
	// <=0 means 4 MiB.
	FlushThresholdBytes int
	// MaxFlushedTables triggers a per-shard compaction when a shard's
	// flushed-table count exceeds it; <=0 means 4.
	MaxFlushedTables int
	// CommitLog, when non-nil, receives every mutation before it is applied
	// (durability hook). Nil disables logging.
	CommitLog CommitLog
	// Resolver arbitrates concurrent (sibling) versions detected by
	// vector-clock comparison; nil means versioning.LWW, which reproduces
	// the engine's historical last-writer-wins behavior exactly. Resolvers
	// must be deterministic or anti-entropy cannot converge replicas.
	Resolver versioning.Resolver
	// OnApply, when non-nil, observes every mutation that actually changed
	// the engine (last-writer-wins accepted it), after the shard's lock is
	// released. The callback runs on the applying goroutine and must not
	// call back into the engine's write path.
	OnApply func(key []byte, v wire.Value)
	// OnReplace is OnApply with the displaced version: old is the newest
	// value the engine held for key before this mutation (hadOld false for
	// a first write). The anti-entropy subsystem uses it to fold the
	// replaced row's digest out of — and the new row's digest into — the
	// affected Merkle leaf in place, instead of invalidating the whole
	// token arc. Same timing and restrictions as OnApply; when both hooks
	// are set, OnReplace runs first.
	OnReplace func(key []byte, old wire.Value, hadOld bool, v wire.Value)
	// Persist, when non-nil, backs every shard with a bitcask-style
	// append-only log under Persist.Path (or the pre-acquired Persist.Dir)
	// instead of in-memory tables: writes are durable per the fsync mode,
	// and a reopened engine recovers its pre-crash state. Persistent
	// engines route keys with a stable hash and pin the shard count in the
	// data dir's MANIFEST, so Shards is only advisory on first open and
	// ignored on reopen. Use Open to get construction errors instead of
	// panics.
	Persist *PersistOptions
}

// CommitLog receives mutations before they are applied.
type CommitLog interface {
	Append(key []byte, v wire.Value) error
}

// defaultShards picks the power of two at or above four times GOMAXPROCS:
// with exclusive per-shard locks, a stripe surplus drives the chance that
// two runnable goroutines collide on one stripe toward zero — measured at
// 8 workers, 4x stripes benchmark ~10-15% faster reads than 2x and ~25%
// faster than 1x, with flat write cost (a shard is ~128 B + one empty map
// until data arrives, so the surplus is nearly free).
func defaultShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	p := 1
	for p < n && p < maxShards {
		p <<= 1
	}
	return p
}

// NewEngine creates an empty engine. With Options.Persist set it panics on
// any persistence error — use Open when errors should be handled (servers
// pre-flight the fallible lock/version checks via AcquireDataDir, so a
// panic here means real I/O failure).
func NewEngine(opts Options) *Engine {
	e, err := Open(opts)
	if err != nil {
		panic(fmt.Sprintf("storage: %v", err))
	}
	return e
}

// Open creates an engine, recovering persistent state when Options.Persist
// is set: each shard's key index is rebuilt from hint files plus a
// CRC-verified replay of the log tail, truncating the torn record a
// mid-write crash leaves. The in-memory engine (Persist nil) cannot fail.
func Open(opts Options) (*Engine, error) {
	if opts.FlushThresholdBytes <= 0 {
		opts.FlushThresholdBytes = 4 << 20
	}
	if opts.MaxFlushedTables <= 0 {
		opts.MaxFlushedTables = 4
	}
	n := opts.Shards
	if n <= 0 {
		if opts.Persist != nil {
			// Persistent shards cost file descriptors and fsync fan-out, and
			// the stripe count is pinned forever in the MANIFEST: default
			// lower than the in-memory engine's GOMAXPROCS multiple.
			n = defaultPersistShards
		} else {
			n = defaultShards()
		}
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	var dd *DataDir
	if po := opts.Persist; po != nil {
		dd = po.Dir
		if dd == nil {
			var err error
			if dd, err = AcquireDataDir(po.Path); err != nil {
				return nil, err
			}
		}
		if dd.shards != 0 {
			p = dd.shards // MANIFEST pins the stripe count across restarts
		} else if err := dd.stamp(p); err != nil {
			dd.Release()
			return nil, err
		}
	}
	e := &Engine{
		shards:    make([]shard, p),
		mask:      uint64(p - 1),
		seed:      maphash.MakeSeed(),
		flushAt:   max(1, opts.FlushThresholdBytes/p),
		maxTables: opts.MaxFlushedTables,
		log:       opts.CommitLog,
		resolver:  opts.Resolver,
		onApply:   opts.OnApply,
		onReplace: opts.OnReplace,
	}
	if opts.Persist == nil {
		for i := range e.shards {
			e.shards[i].memtable = make(map[string]*wire.Value)
		}
		return e, nil
	}
	po := *opts.Persist
	if po.SegmentBytes <= 0 {
		po.SegmentBytes = 64 << 20
	}
	if po.MaxSealedSegments <= 0 {
		po.MaxSealedSegments = 4
	}
	e.persist = newPersistState(dd, po.FsyncInterval)
	for i := range e.shards {
		d, err := openDiskShard(filepath.Join(dd.Path(), fmt.Sprintf("shard-%03d", i)), po.SegmentBytes, po.MaxSealedSegments)
		if err != nil {
			for j := range i {
				e.shards[j].disk.closeAll()
			}
			dd.Release()
			return nil, err
		}
		e.shards[i].disk = d
	}
	if e.persist.groupCommit {
		go e.persist.runGroup(e)
	} else {
		go e.persist.runPeriodic(e)
	}
	return e, nil
}

// defaultPersistShards is the power-of-two stripe count for persistent
// engines when Options.Shards is unset.
const defaultPersistShards = 16

// shardOf routes a key to its stripe. Persistent engines use a fixed hash
// (FNV-1a): routing must be identical across process restarts or a
// reopened engine would look for keys in the wrong shard's log.
func (e *Engine) shardOf(key []byte) *shard {
	if e.mask == 0 {
		return &e.shards[0]
	}
	if e.persist != nil {
		return &e.shards[fnv64a(key)&e.mask]
	}
	return &e.shards[maphash.Bytes(e.seed, key)&e.mask]
}

// fnv64a is the FNV-1a hash, inlined to keep the persistent read/write hot
// path free of the hash/fnv package's interface indirection.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Apply writes v under key if it wins the engine's version comparison
// against what is already held: causal (vector-clock) order when both
// versions carry clocks, the configured Resolver for concurrent siblings
// and clock-less values (last-writer-wins by default). It reports whether
// the value was applied.
//
// The hot path is allocation-free for keys already resident in the
// memtable: the stored value is updated in place under the shard lock, so a
// steady-state overwrite workload performs no per-operation allocation.
func (e *Engine) Apply(key []byte, v wire.Value) (bool, error) {
	if len(key) == 0 {
		return false, fmt.Errorf("storage: empty key")
	}
	if e.log != nil {
		if err := e.log.Append(key, v); err != nil {
			return false, fmt.Errorf("storage: commit log: %w", err)
		}
	}
	s := e.shardOf(key)
	if s.disk != nil {
		return e.applyDisk(s, key, v)
	}
	var old wire.Value
	var hadOld bool
	s.mu.Lock()
	s.writes++
	if p, ok := s.memtable[string(key)]; ok {
		// Invariant: a memtable entry is the newest visible version.
		old, hadOld = *p, true
		take, conc := versioning.Decide(v, old, e.resolver)
		if conc {
			s.siblings++
		}
		if !take {
			s.mu.Unlock()
			return false, nil
		}
		s.memBytes += len(v.Data) - len(p.Data)
		*p = v
	} else {
		if tp := s.tableLookup(key); tp != nil {
			old, hadOld = *tp, true
			take, conc := versioning.Decide(v, old, e.resolver)
			if conc {
				s.siblings++
			}
			if !take {
				s.mu.Unlock()
				return false, nil
			}
		}
		k := string(key)
		vp := new(wire.Value)
		*vp = v
		s.memtable[k] = vp
		s.memBytes += len(v.Data) + len(k)
	}
	if s.memBytes >= e.flushAt {
		e.flushShard(s)
	}
	s.mu.Unlock()
	if e.onReplace != nil {
		e.onReplace(key, old, hadOld, v)
	}
	if e.onApply != nil {
		e.onApply(key, v)
	}
	return true, nil
}

// applyDisk is the persistent Apply path: version arbitration against the
// keydir's metadata (the stored Data is pread only when the comparison can
// actually reach a byte-level tie-break or a hook observes the old row),
// one appended record, and a durability wait on the group-commit boundary.
// Steady-state overwrites allocate nothing: the record encodes into the
// shard scratch and the keydir entry is updated in place.
func (e *Engine) applyDisk(s *shard, key []byte, v wire.Value) (bool, error) {
	var old wire.Value
	var hadOld bool
	s.mu.Lock()
	s.writes++
	d := s.disk
	ent := d.keydir[string(key)]
	if ent != nil {
		hadOld = true
		old = wire.Value{Timestamp: ent.ts, Tombstone: ent.tomb, Clock: ent.clock}
		if e.needOldData(v, old) {
			full, err := d.readValue(ent)
			if err != nil {
				s.mu.Unlock()
				return false, err
			}
			old = full
		}
		take, conc := versioning.Decide(v, old, e.resolver)
		if conc {
			s.siblings++
		}
		if !take {
			s.mu.Unlock()
			return false, nil
		}
	}
	if err := d.append(key, v, ent); err != nil {
		s.mu.Unlock()
		return false, err
	}
	var ticket uint64
	if e.persist.groupCommit {
		ticket = e.persist.mark()
	}
	s.mu.Unlock()
	if err := e.persist.wait(ticket); err != nil {
		// The record is applied in memory but its durability is unknown —
		// the engine is poisoned (sticky error) and must be closed.
		return false, err
	}
	if e.onReplace != nil {
		e.onReplace(key, old, hadOld, v)
	}
	if e.onApply != nil {
		e.onApply(key, v)
	}
	return true, nil
}

// needOldData reports whether version arbitration (or a hook) can observe
// the stored value's Data, requiring a pread of the old record. With the
// default LWW resolver, Decide touches Data only on the same-timestamp
// both-clock-bearing sibling tie-break; custom resolvers and the OnReplace
// hook (whose consumers digest the replaced row's bytes) always need it.
func (e *Engine) needOldData(incoming, old wire.Value) bool {
	if e.onReplace != nil {
		return true
	}
	if e.resolver != nil {
		if _, isLWW := e.resolver.(versioning.LWW); !isLWW {
			return true
		}
	}
	return incoming.Timestamp == old.Timestamp && len(incoming.Clock) > 0 && len(old.Clock) > 0
}

// tableLookup returns the newest flushed version of key in s, newest table
// first (later tables shadow earlier ones), or nil. Caller holds s.mu.
func (s *shard) tableLookup(key []byte) *wire.Value {
	for i := len(s.tables) - 1; i >= 0; i-- {
		if p, ok := s.tables[i].vals[string(key)]; ok {
			return p
		}
	}
	return nil
}

// Get returns the newest value for key across the memtable and all flushed
// tables. ok is false when the key was never written (a tombstoned key
// returns ok=true with Value.Tombstone set, so replication can propagate
// deletes).
func (e *Engine) Get(key []byte) (wire.Value, bool) {
	s := e.shardOf(key)
	s.mu.Lock()
	s.reads++
	if d := s.disk; d != nil {
		ent := d.keydir[string(key)]
		if ent == nil {
			s.mu.Unlock()
			return wire.Value{}, false
		}
		v, err := d.readValue(ent)
		s.mu.Unlock()
		if err != nil {
			// A record that fails its CRC after recovery is unreadable; the
			// shard's readErrs counter records it and the key reads as
			// missing so anti-entropy can re-converge it from peers.
			return wire.Value{}, false
		}
		return v, true
	}
	if p, ok := s.memtable[string(key)]; ok {
		v := *p
		s.mu.Unlock()
		return v, true
	}
	if p := s.tableLookup(key); p != nil {
		v := *p
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	return wire.Value{}, false
}

// Flush freezes every shard's current memtable into an immutable table.
// Each shard freezes independently — concurrent operations on other shards
// proceed while one shard flushes.
func (e *Engine) Flush() {
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		e.flushShard(s)
		s.mu.Unlock()
	}
}

// flushShard freezes s's memtable. Caller holds s.mu. Persistent shards
// have no memtable to freeze — every accepted write is already in the log.
func (e *Engine) flushShard(s *shard) {
	if s.disk != nil || len(s.memtable) == 0 {
		return
	}
	t := &table{vals: s.memtable, keys: make([]string, 0, len(s.memtable))}
	for k := range t.vals {
		t.keys = append(t.keys, k)
	}
	slices.Sort(t.keys)
	s.tables = append(s.tables, t)
	s.memtable = make(map[string]*wire.Value)
	s.memBytes = 0
	s.flushes++
	if len(s.tables) > e.maxTables {
		e.compactShard(s)
	}
}

// Compact merges each shard's flushed tables into one, dropping shadowed
// versions. Shards compact independently.
func (e *Engine) Compact() {
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		e.compactShard(s)
		s.mu.Unlock()
	}
}

// compactShard merges s's tables by k-way merging their already-sorted key
// slices — no intermediate map rebuild, no re-sort — reusing the stored
// value boxes. Later tables shadow earlier ones, so the newest version of a
// key is taken from the highest-indexed table holding it. Caller holds s.mu.
//
// Tombstones are retained across compactions: peer replicas may still need
// them for read repair, and the simulator's working sets are small enough
// that GC-grace bookkeeping would add machinery without adding fidelity to
// the experiments.
func (e *Engine) compactShard(s *shard) {
	if s.disk != nil {
		// Persistent shards compact their sealed segments instead: rewrite
		// live records into one merged segment, reclaim the dead bytes.
		_ = s.disk.compact()
		return
	}
	if len(s.tables) <= 1 {
		return
	}
	total := 0
	for _, t := range s.tables {
		total += len(t.keys)
	}
	merged := &table{keys: make([]string, 0, total), vals: make(map[string]*wire.Value, total)}
	idx := make([]int, len(s.tables))
	for {
		// Smallest current key across tables (table counts are tiny, a
		// linear min beats a heap).
		best := -1
		var bestK string
		for i, t := range s.tables {
			if idx[i] < len(t.keys) && (best == -1 || t.keys[idx[i]] < bestK) {
				best, bestK = i, t.keys[idx[i]]
			}
		}
		if best == -1 {
			break
		}
		// The newest version lives in the highest-indexed table holding the
		// key; advance every table past it.
		var vp *wire.Value
		for i := len(s.tables) - 1; i >= 0; i-- {
			t := s.tables[i]
			if idx[i] < len(t.keys) && t.keys[idx[i]] == bestK {
				if vp == nil {
					vp = t.vals[bestK]
				}
				idx[i]++
			}
		}
		merged.keys = append(merged.keys, bestK)
		merged.vals[bestK] = vp
	}
	s.tables = []*table{merged}
	s.compacted++
}

// kv is one scan result row.
type kv struct {
	k string
	v wire.Value
}

// Scan invokes fn over every live key/value in [start, end) in key order
// (nil bounds mean unbounded); fn returning false stops the scan.
// Tombstoned entries are skipped.
//
// Each shard contributes one sorted, deduplicated slice (its flushed tables
// already keep sorted keys; only the memtable snapshot is sorted per scan),
// and the shard slices k-way merge into the result. Shards are snapshotted
// one at a time under their read locks, so a scan is consistent per shard
// but not a point-in-time snapshot across shards — concurrent writers to
// other shards may or may not be observed, exactly like a range read over a
// striped store.
func (e *Engine) Scan(start, end []byte, fn func(key []byte, v wire.Value) bool) {
	e.scan(start, end, false, fn)
}

// ScanVersions is Scan including tombstoned entries: anti-entropy repair
// must exchange deletes the same way it exchanges writes, or a tombstone on
// one replica against live data on another would diverge forever.
func (e *Engine) ScanVersions(start, end []byte, fn func(key []byte, v wire.Value) bool) {
	e.scan(start, end, true, fn)
}

// scanScratch is the pooled working set of one scan: per-shard run buffers
// plus the merge heap and in-shard merge cursors. Runs and cursors are
// reused across scans so a steady scan workload allocates only what rows
// force the run buffers to grow.
type scanScratch struct {
	runs [][]kv // per-shard collected rows, indexed by shard
	part []int  // indices into runs of the non-empty runs this scan
	heap []int
	idx  []int
	srcs [][]string // in-shard merge sources (memtable snapshot + tables)
	keys []string   // sorted memtable / keydir key snapshot
}

func (e *Engine) scan(start, end []byte, tombstones bool, fn func(key []byte, v wire.Value) bool) {
	sc, _ := e.scanPool.Get().(*scanScratch)
	if sc == nil {
		sc = &scanScratch{}
	}
	if len(sc.runs) < len(e.shards) {
		sc.runs = append(sc.runs, make([][]kv, len(e.shards)-len(sc.runs))...)
	}
	defer func() {
		// Drop value references before pooling so a retained scratch never
		// pins row payloads alive.
		for i := range sc.runs {
			clear(sc.runs[i])
			sc.runs[i] = sc.runs[i][:0]
		}
		clear(sc.keys)
		sc.keys = sc.keys[:0]
		clear(sc.srcs)
		sc.srcs = sc.srcs[:0]
		e.scanPool.Put(sc)
	}()
	parts := sc.part[:0]
	for i := range e.shards {
		sc.runs[i] = e.shards[i].collect(sc.runs[i][:0], start, end, tombstones, sc)
		if len(sc.runs[i]) > 0 {
			parts = append(parts, i)
		}
	}
	sc.part = parts
	// Merge the per-shard sorted runs via a min-heap of run heads: unlike
	// the in-shard merge (whose source count is bounded by maxTables+1),
	// the run count here grows with the stripe count, so a linear min would
	// cost O(shards) per output row. Keys never repeat across shards, so
	// this is a pure merge with no cross-part dedup; each part is non-empty.
	heap := append(sc.heap[:0], parts...) // heap of run indices, keyed by head key
	idx := sc.idx[:0]                     // per-run cursor, indexed by shard
	for range sc.runs {
		idx = append(idx, 0)
	}
	sc.heap, sc.idx = heap, idx
	head := func(p int) string { return sc.runs[p][idx[p]].k }
	less := func(a, b int) bool { return head(heap[a]) < head(heap[b]) }
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(heap, i, less)
	}
	for len(heap) > 0 {
		p := heap[0]
		item := sc.runs[p][idx[p]]
		idx[p]++
		if idx[p] == len(sc.runs[p]) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		if len(heap) > 0 {
			siftDown(heap, 0, less)
		}
		if !fn([]byte(item.k), item.v) {
			return
		}
	}
}

// siftDown restores the min-heap property for the subtree rooted at i.
func siftDown(h []int, i int, less func(a, b int) bool) {
	for {
		small := i
		if l := 2*i + 1; l < len(h) && less(l, small) {
			small = l
		}
		if r := 2*i + 2; r < len(h) && less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// collect appends the shard's live (or all-version) rows in [start, end) to
// dst in key order: a k-way merge over the flushed tables' sorted key
// slices plus one sorted snapshot of the memtable keys, resolved to the
// newest version under the shard's read lock. Persistent shards snapshot
// and sort the keydir instead, preading each row. The scratch's srcs/keys
// buffers are borrowed for the duration of the call (the engine runs shard
// collects sequentially within a scan).
func (s *shard) collect(dst []kv, start, end []byte, tombstones bool, sc *scanScratch) []kv {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d := s.disk; d != nil {
		return d.collect(dst, start, end, tombstones, sc)
	}
	srcs := sc.srcs[:0]
	if len(s.memtable) > 0 {
		mk := sc.keys[:0]
		for k := range s.memtable {
			mk = append(mk, k)
		}
		slices.Sort(mk)
		sc.keys = mk
		srcs = append(srcs, mk)
	}
	for _, t := range s.tables {
		srcs = append(srcs, t.keys)
	}
	sc.srcs = srcs
	idx := sc.idx[:0]
	for range srcs {
		idx = append(idx, 0)
	}
	sc.idx = idx
	if start != nil {
		for i, src := range srcs {
			idx[i], _ = slices.BinarySearch(src, string(start))
		}
	}
	endKey := string(end)
	out := dst
	for {
		best := -1
		var bestK string
		for i, src := range srcs {
			if idx[i] < len(src) && (best == -1 || src[idx[i]] < bestK) {
				best, bestK = i, src[idx[i]]
			}
		}
		if best == -1 {
			break
		}
		if end != nil && bestK >= endKey {
			break // merge order: every remaining key is out of bounds too
		}
		// Advance every source past this key (cross-source dedup).
		for i, src := range srcs {
			for idx[i] < len(src) && src[idx[i]] == bestK {
				idx[i]++
			}
		}
		var vp *wire.Value
		if p, ok := s.memtable[bestK]; ok {
			vp = p // memtable always holds the newest visible version
		} else {
			vp = s.tableLookup([]byte(bestK))
		}
		if vp != nil && (tombstones || !vp.Tombstone) {
			out = append(out, kv{bestK, *vp})
		}
	}
	return out
}

// collect is the persistent shard's scan contribution: a sorted snapshot of
// the keydir's in-range keys, each row pread and decoded. Caller holds the
// shard lock. Rows whose records fail their CRC are skipped (and counted)
// so one bad sector cannot wedge anti-entropy for the whole range.
func (d *diskShard) collect(dst []kv, start, end []byte, tombstones bool, sc *scanScratch) []kv {
	startKey, endKey := string(start), string(end)
	keys := sc.keys[:0]
	for k, e := range d.keydir {
		if !tombstones && e.tomb {
			continue
		}
		if start != nil && k < startKey {
			continue
		}
		if end != nil && k >= endKey {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sc.keys = keys
	out := dst
	for _, k := range keys {
		v, err := d.readValue(d.keydir[k])
		if err != nil {
			continue
		}
		out = append(out, kv{k, v})
	}
	return out
}

// Stats is a snapshot of engine counters. Sums aggregate across shards;
// FlushedTables is the total table count over all shards.
type Stats struct {
	Writes      uint64
	Reads       uint64
	Flushes     uint64
	Compactions uint64
	// Siblings counts applies where the incoming and held versions were
	// causally concurrent and the resolver had to arbitrate — the store's
	// conflict-rate gauge.
	Siblings      uint64
	MemtableKeys  int
	MemtableBytes int
	FlushedTables int
	LiveKeys      int
	Shards        int
	// Persistent-backend gauges; zero for the in-memory engine.
	DiskSegments  int    // data files across shards (incl. active)
	DiskBytes     int64  // total log bytes on disk
	DiskDeadBytes int64  // bytes owned by overwritten records (compaction reclaims)
	RecoveredRows int    // keydir entries rebuilt from disk at Open
	ReadErrors    uint64 // records that failed CRC/pread after recovery
	KeydirBytes   int64  // estimated resident bytes of the keydirs (the RAM ceiling)
	// Fsync-batch stats: fsync calls issued by batch rounds, and the
	// appends those rounds covered — FsyncBatchedOps/Fsyncs is the group-
	// commit amortization factor.
	Fsyncs          uint64
	FsyncBatchedOps uint64
}

// Stats returns a snapshot of the engine's counters, aggregated over
// shards. Each shard is snapshotted consistently under its lock; the
// aggregate is not a cross-shard point-in-time snapshot.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: len(e.shards)}
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		st.Writes += s.writes
		st.Reads += s.reads
		st.Flushes += s.flushes
		st.Compactions += s.compacted
		st.Siblings += s.siblings
		if d := s.disk; d != nil {
			st.Compactions += d.compacted
			st.LiveKeys += len(d.keydir)
			st.DiskSegments += len(d.segs)
			for _, sg := range d.segs {
				st.DiskBytes += sg.size
				st.DiskDeadBytes += sg.dead
			}
			st.RecoveredRows += d.recovered
			st.ReadErrors += d.readErrs
			st.KeydirBytes += d.keydirBytes
			s.mu.Unlock()
			continue
		}
		st.MemtableKeys += len(s.memtable)
		st.MemtableBytes += s.memBytes
		st.FlushedTables += len(s.tables)
		live := make(map[string]struct{}, len(s.memtable))
		for k := range s.memtable {
			live[k] = struct{}{}
		}
		for _, t := range s.tables {
			for _, k := range t.keys {
				live[k] = struct{}{}
			}
		}
		st.LiveKeys += len(live)
		s.mu.Unlock()
	}
	if p := e.persist; p != nil {
		p.mu.Lock()
		st.Fsyncs = p.fsyncs
		st.FsyncBatchedOps = p.fsyncOps
		p.mu.Unlock()
	}
	return st
}

// Recovered returns the number of rows rebuilt from disk when the engine
// opened — the keydir entries restored from hint files plus the replayed
// log tail. Zero for in-memory engines.
func (e *Engine) Recovered() int {
	n := 0
	for i := range e.shards {
		if d := e.shards[i].disk; d != nil {
			n += d.recovered
		}
	}
	return n
}

// Sync forces an immediate fsync round over every shard with unsynced
// appends. It is a no-op for in-memory engines. Periodic-mode callers use
// it to bound data loss at a checkpoint without waiting for the timer.
func (e *Engine) Sync() error {
	if e.persist == nil {
		return nil
	}
	return e.persist.syncRound(e)
}

// Close flushes and releases the persistent backend: a final fsync round,
// syncer shutdown, segment file closes, and the data-dir lock release. The
// engine must not be used after Close. In-memory engines close trivially.
func (e *Engine) Close() error {
	if e.persist == nil {
		return nil
	}
	return e.persist.close(e)
}

// Package client implements the store's client driver: the counterpart of
// the paper's modified YCSB Cassandra client. It routes operations to
// coordinator nodes round-robin, attaches a per-operation consistency level
// obtained from a pluggable LevelSource (Harmony's adaptive controller, or a
// static policy), correlates responses, and enforces timeouts. It also
// offers the dual-read staleness probe of §V-F.
//
// The driver is event-driven like the rest of the system: operations take a
// callback and complete on the driver's runtime.
package client

import (
	"errors"
	"fmt"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// Driver errors.
var (
	ErrTimeout     = errors.New("client: operation timed out")
	ErrUnavailable = errors.New("client: not enough replicas")
	ErrServer      = errors.New("client: server error")
)

// LevelSource supplies the consistency level for the next read operation.
// Harmony's controller implements it; static policies use Fixed.
type LevelSource interface {
	ReadLevel() wire.ConsistencyLevel
}

// KeyLevelSource supplies per-key consistency levels — the interface behind
// the paper's future-work data categorization (core.PerKeyLevels, and the
// multi-model core.Controller under the online regrouping subsystem): keys
// in write-contended categories read at higher levels than cold ones.
//
// The driver consults the source at issue time for every read and never
// caches levels, so a source whose grouping changes at runtime (the
// regrouping subsystem swaps epochs mid-run) takes effect on the very next
// operation. Implementations must resolve the key's group and that group's
// level atomically — a key must never be judged with one epoch's group id
// against another epoch's group table (core.Controller.ReadLevelFor holds
// its lock across both lookups for exactly this reason).
type KeyLevelSource interface {
	ReadLevelFor(key []byte) wire.ConsistencyLevel
}

// WriteLevelSource supplies per-key WRITE consistency levels — the other
// half of per-key-group adaptation. The paper ships every write at ONE; an
// adaptive controller may instead move a tightly-tolerated group's writes to
// QUORUM so its reads can relax from near-ALL to QUORUM (R+W>N overlap).
// The same atomicity contract as KeyLevelSource applies: the key's group
// and that group's level must resolve together.
type WriteLevelSource interface {
	WriteLevelFor(key []byte) wire.ConsistencyLevel
}

// Fixed is a LevelSource always returning a constant level.
type Fixed wire.ConsistencyLevel

// ReadLevel implements LevelSource.
func (f Fixed) ReadLevel() wire.ConsistencyLevel { return wire.ConsistencyLevel(f) }

// Options configure a Driver.
type Options struct {
	// ID is the driver's endpoint identity on the fabric.
	ID ring.NodeID
	// Coordinators are the nodes the driver spreads requests over.
	Coordinators []ring.NodeID
	// Levels supplies per-read consistency levels; nil means Fixed(One).
	Levels LevelSource
	// KeyLevels, when set, takes precedence over Levels and chooses the
	// level per key (core.PerKeyLevels for category-based consistency).
	KeyLevels KeyLevelSource
	// WriteLevel is the consistency level for writes; zero means One (the
	// paper's setting: "a write of consistency level one", §II-B).
	WriteLevel wire.ConsistencyLevel
	// WriteLevels, when set, takes precedence over WriteLevel and chooses
	// the write level per key (the multi-model controller with adaptive
	// write levels enabled).
	WriteLevels WriteLevelSource
	// Timeout bounds each operation; zero means 2s.
	Timeout time.Duration
	// ShadowEvery requests the dual-read staleness probe (§V-F) on every
	// k-th read; 0 disables probing, 1 probes every read. Sampling keeps
	// the measurement from perturbing the run the way the paper's
	// probe-every-read method admits to doing.
	ShadowEvery int
}

// ReadResult is delivered to read callbacks.
type ReadResult struct {
	Found    bool
	Value    []byte
	Ts       int64
	Achieved wire.ConsistencyLevel
	Err      error
}

// WriteResult is delivered to write callbacks.
type WriteResult struct {
	Ts  int64
	Err error
}

// Driver issues operations against the cluster. All methods must be called
// from the driver's runtime context; callbacks run there too.
type Driver struct {
	opts    Options
	rt      sim.Runtime
	send    transport.Sender
	nextID  uint64
	nextCo  int
	reads   uint64
	pending map[uint64]*pendingOp
}

type pendingOp struct {
	onRead  func(ReadResult)
	onWrite func(WriteResult)
	cancel  func()
}

// New creates a driver and registers nothing: the caller must register the
// driver on the fabric (bus.Register(opts.ID, rt, driver)).
func New(opts Options, rt sim.Runtime, send transport.Sender) (*Driver, error) {
	if len(opts.Coordinators) == 0 {
		return nil, fmt.Errorf("client: no coordinators")
	}
	if opts.Levels == nil {
		opts.Levels = Fixed(wire.One)
	}
	if opts.WriteLevel == 0 {
		opts.WriteLevel = wire.One
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	return &Driver{
		opts:    opts,
		rt:      rt,
		send:    send,
		pending: make(map[uint64]*pendingOp),
	}, nil
}

// ID returns the driver's fabric identity.
func (d *Driver) ID() ring.NodeID { return d.opts.ID }

func (d *Driver) coordinator() ring.NodeID {
	c := d.opts.Coordinators[d.nextCo%len(d.opts.Coordinators)]
	d.nextCo++
	return c
}

func (d *Driver) newOp() uint64 {
	d.nextID++
	return d.nextID
}

// Read fetches key at the level the configured source chooses: per key when
// KeyLevels is set, otherwise the global LevelSource.
func (d *Driver) Read(key []byte, cb func(ReadResult)) {
	level := d.opts.Levels.ReadLevel()
	if d.opts.KeyLevels != nil {
		level = d.opts.KeyLevels.ReadLevelFor(key)
	}
	d.ReadAt(key, level, cb)
}

// ReadAt fetches key at an explicit consistency level.
func (d *Driver) ReadAt(key []byte, level wire.ConsistencyLevel, cb func(ReadResult)) {
	id := d.newOp()
	op := &pendingOp{onRead: cb}
	d.pending[id] = op
	op.cancel = d.rt.After(d.opts.Timeout, func() {
		if _, ok := d.pending[id]; ok {
			delete(d.pending, id)
			cb(ReadResult{Err: ErrTimeout})
		}
	})
	d.reads++
	shadow := d.opts.ShadowEvery > 0 && d.reads%uint64(d.opts.ShadowEvery) == 0
	d.send.Send(d.opts.ID, d.coordinator(), wire.ReadRequest{
		ID: id, Key: key, Level: level, Shadow: shadow,
	})
}

// Write stores value under key at the configured write level.
func (d *Driver) Write(key, value []byte, cb func(WriteResult)) {
	d.write(key, value, false, cb)
}

// Delete removes key (tombstone write).
func (d *Driver) Delete(key []byte, cb func(WriteResult)) {
	d.write(key, nil, true, cb)
}

func (d *Driver) write(key, value []byte, del bool, cb func(WriteResult)) {
	id := d.newOp()
	op := &pendingOp{onWrite: cb}
	d.pending[id] = op
	op.cancel = d.rt.After(d.opts.Timeout, func() {
		if _, ok := d.pending[id]; ok {
			delete(d.pending, id)
			cb(WriteResult{Err: ErrTimeout})
		}
	})
	level := d.opts.WriteLevel
	if d.opts.WriteLevels != nil {
		if l := d.opts.WriteLevels.WriteLevelFor(key); l != 0 {
			level = l
		}
	}
	d.send.Send(d.opts.ID, d.coordinator(), wire.WriteRequest{
		ID: id, Key: key, Value: value, Delete: del, Level: level,
	})
}

// VerifyRead performs the paper's literal dual-read staleness measurement:
// one read at the adaptive level followed by one at ALL, comparing
// timestamps. The callback receives the primary result and whether it was
// stale relative to the strong read. Note the measurement perturbs the
// system exactly as §V-F warns.
func (d *Driver) VerifyRead(key []byte, cb func(primary ReadResult, stale bool)) {
	d.Read(key, func(primary ReadResult) {
		if primary.Err != nil {
			cb(primary, false)
			return
		}
		d.ReadAt(key, wire.All, func(strong ReadResult) {
			stale := strong.Err == nil && strong.Found && strong.Ts > primary.Ts
			cb(primary, stale)
		})
	})
}

// Deliver implements transport.Handler: correlate responses to callbacks.
func (d *Driver) Deliver(_ ring.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case wire.ReadResponse:
		if op, ok := d.pending[msg.ID]; ok && op.onRead != nil {
			delete(d.pending, msg.ID)
			op.cancel()
			op.onRead(ReadResult{
				Found:    msg.Found,
				Value:    msg.Value.Data,
				Ts:       msg.Value.Timestamp,
				Achieved: msg.Achieved,
			})
		}
	case wire.WriteResponse:
		if op, ok := d.pending[msg.ID]; ok && op.onWrite != nil {
			delete(d.pending, msg.ID)
			op.cancel()
			op.onWrite(WriteResult{Ts: msg.Timestamp})
		}
	case wire.Error:
		if op, ok := d.pending[msg.ID]; ok {
			delete(d.pending, msg.ID)
			op.cancel()
			err := fmt.Errorf("%w: %s (%s)", ErrServer, msg.Msg, msg.Code)
			if msg.Code == wire.ErrTimeout {
				err = fmt.Errorf("%w: %s", ErrTimeout, msg.Msg)
			}
			if msg.Code == wire.ErrUnavailable {
				err = fmt.Errorf("%w: %s", ErrUnavailable, msg.Msg)
			}
			if op.onRead != nil {
				op.onRead(ReadResult{Err: err})
			} else if op.onWrite != nil {
				op.onWrite(WriteResult{Err: err})
			}
		}
	}
}

// Pending reports in-flight operations (tests).
func (d *Driver) Pending() int { return len(d.pending) }

var _ transport.Handler = (*Driver)(nil)

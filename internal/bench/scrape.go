package bench

// The live scraper is the observability half of the live backend: while an
// experiment drives load, it polls every member's admin endpoint (/metrics +
// /trace) plus the client-side tally on a fixed cadence and assembles one
// aligned time series — throughput, per-group staleness, the level each
// group is commanded at and actually served at, and the queue-depth gauges.
// The hotcold/churn artifacts then show the adaptation trajectory over time
// instead of two end-state numbers.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"harmony/internal/obs"
	"harmony/internal/ring"
)

// LiveSample is one scrape tick of a live experiment.
type LiveSample struct {
	// TMs is the sample's offset from the series start.
	TMs float64 `json:"t_ms"`
	// Ops / OpsPerSec are the client operations completed during the tick.
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// GroupLevels is the controller-commanded read level per group at
	// sample time (["QUORUM","ONE"], hot group first).
	GroupLevels []string `json:"group_levels"`
	// Probes / StaleFrac are the per-group dual-read staleness probes
	// issued during the tick and the stale fraction they measured.
	Probes    []uint64  `json:"probes"`
	StaleFrac []float64 `json:"stale_frac"`
	// ServedLevelUse tallies the consistency levels the members actually
	// coordinated at during the tick (scraped counter deltas, cluster-wide)
	// — the served-side complement of GroupLevels.
	ServedLevelUse map[string]uint64 `json:"served_level_use,omitempty"`
	// Queue-depth gauges summed over scraped members.
	HintQueueDepth float64 `json:"hint_queue_depth"`
	SendQueueBytes float64 `json:"send_queue_bytes"`
	KeydirBytes    float64 `json:"keydir_bytes"`
	// ScrapedNodes counts members that answered /metrics this tick (a
	// killed member scrapes as 0 until its restart rebinds the port).
	ScrapedNodes int `json:"scraped_nodes"`
}

// LiveSeries is the scraped time series of one live experiment arm.
type LiveSeries struct {
	IntervalMs float64      `json:"interval_ms"`
	Samples    []LiveSample `json:"samples"`
	// Trace merges the experiment's control-loop events: every level
	// change, divergence hold/release and SESSION override the client-side
	// controller decided (no Node field), plus the events scraped from the
	// members' own rings (Node set). Ordered by AtMs.
	Trace []obs.Event `json:"trace,omitempty"`
}

// liveScraper polls the cluster on a fixed cadence until stopped.
type liveScraper struct {
	interval time.Duration
	admins   map[ring.NodeID]string
	tally    *liveTally
	levels   func() []string // controller-commanded level per group
	trace    *obs.Trace      // client-side controller's ring
	client   *http.Client

	stop chan struct{}
	done chan struct{}

	start       time.Time
	samples     []LiveSample
	nodeEvents  []obs.Event
	prevOps     int64
	prevSamples [2]uint64
	prevStale   [2]uint64
	prevLevels  map[string]uint64
	since       map[ring.NodeID]uint64
}

// startLiveScraper begins polling; call finish to stop and collect the
// series. interval <= 0 defaults to one second (the artifact's cadence).
func startLiveScraper(lc *LiveCluster, tally *liveTally, levels func() []string, trace *obs.Trace, interval time.Duration) *liveScraper {
	if interval <= 0 {
		interval = time.Second
	}
	s := &liveScraper{
		interval: interval,
		admins:   lc.AdminAddrs(),
		tally:    tally,
		levels:   levels,
		trace:    trace,
		client:   &http.Client{Timeout: interval / 2},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		start:    time.Now(),
		since:    make(map[ring.NodeID]uint64),
	}
	s.prevSamples, s.prevStale = tally.probes()
	go s.loop()
	return s
}

func (s *liveScraper) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.sample()
		}
	}
}

// finish stops polling, takes one last sample, and assembles the series.
func (s *liveScraper) finish() *LiveSeries {
	close(s.stop)
	<-s.done
	s.sample()
	events := append([]obs.Event(nil), s.trace.Events()...)
	events = append(events, s.nodeEvents...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].AtMs < events[j].AtMs })
	return &LiveSeries{
		IntervalMs: durMs(s.interval),
		Samples:    s.samples,
		Trace:      events,
	}
}

// sample takes one aligned tick: client tally deltas, controller levels,
// and a parallel scrape of every member's /metrics and /trace.
func (s *liveScraper) sample() {
	snap := s.tally.snapshot()
	curSamples, curStale := s.tally.probes()
	sm := LiveSample{
		TMs:         durMs(time.Since(s.start)),
		Ops:         snap.ops - s.prevOps,
		GroupLevels: s.levels(),
	}
	sm.OpsPerSec = float64(sm.Ops) / s.interval.Seconds()
	for g := 0; g < 2; g++ {
		probes := curSamples[g] - s.prevSamples[g]
		stale := curStale[g] - s.prevStale[g]
		frac := 0.0
		if probes > 0 {
			frac = float64(stale) / float64(probes)
		}
		sm.Probes = append(sm.Probes, probes)
		sm.StaleFrac = append(sm.StaleFrac, frac)
	}
	s.prevOps = snap.ops
	s.prevSamples, s.prevStale = curSamples, curStale

	// Scrape members concurrently so one dead admin port (a killed member)
	// costs a connect refusal, not a serialized timeout chain.
	results := make(map[ring.NodeID]*nodeScrape, len(s.admins))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id, addr := range s.admins {
		wg.Add(1)
		go func(id ring.NodeID, addr string) {
			defer wg.Done()
			r := s.scrapeNode(id, addr)
			mu.Lock()
			results[id] = r
			mu.Unlock()
		}(id, addr)
	}
	wg.Wait()

	levelUse := make(map[string]uint64)
	for id, r := range results {
		if !r.ok {
			continue
		}
		sm.ScrapedNodes++
		sm.HintQueueDepth += r.hints
		sm.SendQueueBytes += r.sendq
		sm.KeydirBytes += r.keydir
		for lvl, n := range r.levelUse {
			levelUse[lvl] += n
		}
		s.nodeEvents = append(s.nodeEvents, r.events...)
		if r.lastSeq > s.since[id] {
			s.since[id] = r.lastSeq
		}
	}
	// Served-level deltas: the members' cumulative level-use counters minus
	// the previous tick's. A re-baselined counter (restart, regroup epoch)
	// clamps at zero rather than going negative.
	if s.prevLevels != nil {
		delta := make(map[string]uint64)
		for lvl, n := range levelUse {
			if prev := s.prevLevels[lvl]; n > prev {
				delta[lvl] = n - prev
			}
		}
		if len(delta) > 0 {
			sm.ServedLevelUse = delta
		}
	}
	s.prevLevels = levelUse

	s.samples = append(s.samples, sm)
}

// nodeScrape is what one member yielded on one tick.
type nodeScrape struct {
	ok       bool
	hints    float64
	sendq    float64
	keydir   float64
	levelUse map[string]uint64
	events   []obs.Event
	lastSeq  uint64
}

// scrapeNode pulls one member's /metrics and /trace.
func (s *liveScraper) scrapeNode(id ring.NodeID, addr string) *nodeScrape {
	r := &nodeScrape{levelUse: make(map[string]uint64)}

	resp, err := s.client.Get("http://" + addr + "/metrics")
	if err != nil {
		return r
	}
	scanProm(resp, func(name string, labels string, v float64) {
		switch name {
		case "harmony_hint_queue_depth":
			r.hints += v
		case "harmony_transport_peer_queue_bytes":
			r.sendq += v
		case "harmony_storage_keydir_bytes":
			r.keydir += v
		case "harmony_group_level_use_total":
			if lvl := labelValue(labels, "level"); lvl != "" {
				r.levelUse[lvl] += uint64(v)
			}
		}
	})
	r.ok = true

	tr, err := s.client.Get(fmt.Sprintf("http://%s/trace?since=%d", addr, s.since[id]))
	if err != nil {
		return r
	}
	defer tr.Body.Close()
	sc := bufio.NewScanner(tr.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		var e obs.Event
		if json.Unmarshal(sc.Bytes(), &e) != nil {
			continue
		}
		if e.Node == "" {
			e.Node = string(id)
		}
		r.events = append(r.events, e)
		if e.Seq > r.lastSeq {
			r.lastSeq = e.Seq
		}
	}
	return r
}

// scanProm walks a Prometheus text exposition response line by line. labels
// is the raw `k="v",...` payload between the braces ("" when absent) — the
// scraper only resolves individual labels on the few series that need them.
func scanProm(resp *http.Response, visit func(name, labels string, value float64)) {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		series := line[:sp]
		name, labels := series, ""
		if br := strings.IndexByte(series, '{'); br >= 0 && strings.HasSuffix(series, "}") {
			name, labels = series[:br], series[br+1:len(series)-1]
		}
		visit(name, labels, v)
	}
}

// labelValue extracts one label's value from a raw label payload. Label
// values produced by this repo's registry never contain escaped quotes for
// the labels the scraper reads (node ids, level names), so a plain scan to
// the closing quote suffices.
func labelValue(labels, key string) string {
	needle := key + `="`
	i := strings.Index(labels, needle)
	if i < 0 {
		return ""
	}
	rest := labels[i+len(needle):]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return ""
}

// Package bench regenerates every figure of the paper's evaluation (§V):
// the stale-read estimation studies of Fig. 4, the latency/throughput
// comparisons of Fig. 5, the measured-staleness comparison of Fig. 6, and
// the headline claims of §I, plus the ablations listed in DESIGN.md. Each
// experiment builds a fresh simulated cluster, drives it with the YCSB
// workload model, and emits a Figure whose series mirror the paper's plots.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is a named curve within a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a reproduced plot: series share the x-axis, exactly as in the
// paper.
type Figure struct {
	ID     string // e.g. "fig5a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Format renders the figure as an aligned text table, one row per x value
// and one column per series — the textual equivalent of the paper's plot.
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	// Collect the union of x values in order.
	xsSeen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !xsSeen[p.X] {
				xsSeen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	// Header.
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %20s", s.Name)
	}
	b.WriteString("\n")
	lookup := make([]map[float64]float64, len(f.Series))
	for i, s := range f.Series {
		lookup[i] = make(map[float64]float64, len(s.Points))
		for _, p := range s.Points {
			lookup[i][p.X] = p.Y
		}
	}
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14s", trimFloat(x))
		for i := range f.Series {
			if y, ok := lookup[i][x]; ok {
				fmt.Fprintf(&b, " %20s", trimFloat(y))
			} else {
				fmt.Fprintf(&b, " %20s", "-")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(y: %s)\n", f.YLabel)
	return b.String()
}

// CSV renders the figure as long-form CSV (series,x,y).
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figure,series,%s,%s\n", csvEscape(f.XLabel), csvEscape(f.YLabel))
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%s,%s,%s\n", f.ID, csvEscape(s.Name), trimFloat(p.X), trimFloat(p.Y))
		}
	}
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

func csvEscape(s string) string {
	s = strings.ReplaceAll(s, ",", ";")
	return strings.ReplaceAll(s, "\n", " ")
}

// Package transport connects protocol actors to each other. It defines the
// asynchronous Send/Deliver contract the store is written against and
// provides two in-memory backends: a discrete-event one (virtual time via
// sim.Sim) and a real-time one (goroutine mailboxes plus wall-clock timers).
// The TCP backend for live deployments lives in tcp.go.
package transport

import (
	"sync"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/wire"
)

// Handler consumes messages delivered to an endpoint. Deliver is always
// invoked on the endpoint's runtime (serialized per endpoint).
type Handler interface {
	Deliver(from ring.NodeID, m wire.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from ring.NodeID, m wire.Message)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(from ring.NodeID, m wire.Message) { f(from, m) }

// Sender sends messages to named endpoints. Sends are asynchronous and may
// be silently dropped when the destination is unknown or partitioned —
// exactly the failure mode a UDP-like or timed-out link presents; protocol
// code must rely on its own timeouts.
type Sender interface {
	Send(from, to ring.NodeID, m wire.Message)
}

// Bus is an in-memory message fabric: endpoints register a handler plus the
// runtime on which their callbacks must execute; Send computes a delivery
// delay from the simulated network and schedules Deliver on the target's
// runtime. One Bus instance serves both the DES and the real-time mode —
// the difference is which Runtime implementations are registered.
type Bus struct {
	mu        sync.Mutex
	net       *simnet.Net
	endpoints map[ring.NodeID]busEndpoint
	dropped   uint64
	delivered uint64
}

type busEndpoint struct {
	rt sim.Runtime
	h  Handler
}

// NewBus creates a bus over the given simulated network.
func NewBus(net *simnet.Net) *Bus {
	return &Bus{net: net, endpoints: make(map[ring.NodeID]busEndpoint)}
}

// Register attaches an endpoint. Re-registering an ID replaces the previous
// handler (used when a node restarts).
func (b *Bus) Register(id ring.NodeID, rt sim.Runtime, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.endpoints[id] = busEndpoint{rt: rt, h: h}
}

// Unregister detaches an endpoint; in-flight messages to it are dropped.
func (b *Bus) Unregister(id ring.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.endpoints, id)
}

// Send implements Sender. The message is delivered after the network delay,
// or dropped when the link is partitioned or the target unknown.
func (b *Bus) Send(from, to ring.NodeID, m wire.Message) {
	b.mu.Lock()
	ep, ok := b.endpoints[to]
	b.mu.Unlock()
	if !ok {
		b.drop()
		return
	}
	delay, up := b.net.Delay(from, to, wire.Size(m))
	if !up {
		b.drop()
		return
	}
	b.mu.Lock()
	b.delivered++
	b.mu.Unlock()
	ep.rt.After(delay, func() {
		// Re-check registration at delivery time: the node may have
		// stopped while the message was in flight.
		b.mu.Lock()
		cur, still := b.endpoints[to]
		b.mu.Unlock()
		if still && cur.h == ep.h {
			ep.h.Deliver(from, m)
		}
	})
}

func (b *Bus) drop() {
	b.mu.Lock()
	b.dropped++
	b.mu.Unlock()
}

// Stats reports delivered and dropped message counts.
func (b *Bus) Stats() (delivered, dropped uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.delivered, b.dropped
}

// Loopback is a degenerate Sender delivering synchronously on the calling
// goroutine with zero delay; used by unit tests that exercise a single node
// in isolation.
type Loopback struct {
	mu        sync.Mutex
	endpoints map[ring.NodeID]Handler
}

// NewLoopback returns an empty loopback fabric.
func NewLoopback() *Loopback {
	return &Loopback{endpoints: make(map[ring.NodeID]Handler)}
}

// Register attaches a handler.
func (l *Loopback) Register(id ring.NodeID, h Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.endpoints[id] = h
}

// Send implements Sender with immediate synchronous delivery.
func (l *Loopback) Send(from, to ring.NodeID, m wire.Message) {
	l.mu.Lock()
	h := l.endpoints[to]
	l.mu.Unlock()
	if h != nil {
		h.Deliver(from, m)
	}
}

// Latency measures round trips through a Sender-based fabric; a helper for
// tests wanting to assert delay behaviour.
func Latency(rt sim.Runtime, start time.Time) time.Duration {
	return rt.Now().Sub(start)
}

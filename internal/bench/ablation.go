package bench

import (
	"fmt"
	"time"

	"harmony/internal/ycsb"
)

// Ablations isolate the design choices DESIGN.md §6 calls out. Each returns
// a Figure comparing the variants along the thread sweep (or another
// controlled variable).

// AblationFixedTp compares Harmony with monitored network latency against a
// variant whose propagation time is frozen at a small constant — showing why
// Fig. 4(b)'s latency sensitivity motivates live monitoring: the frozen
// variant under-escalates when latency spikes, letting stale reads through.
func AblationFixedTp(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	sc := EC2() // high, variable latency is where the term matters
	tolerance := sc.HarmonyTolerances[0]
	policies := []PolicySpec{
		{Kind: PolicyHarmony, Tolerance: tolerance},
		{Kind: PolicyHarmony, Tolerance: tolerance, FixedTp: 100 * time.Microsecond},
	}
	g, err := RunGrid(sc, policies, opts)
	if err != nil {
		return Figure{}, err
	}
	f := g.StalenessFigure("ablation-fixedtp")
	f.Title = "stale reads with monitored vs frozen propagation time (ec2)"
	return f, nil
}

// AblationMonitorInterval sweeps the monitoring cadence: a slow monitor
// reacts late to load shifts and admits more staleness; a fast one costs
// more probe traffic for little extra benefit.
func AblationMonitorInterval(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "ablation-monitor-interval",
		Title:  "stale reads vs monitoring interval (grid5000, 90 threads)",
		XLabel: "monitor interval (s)",
		YLabel: "stale reads per 100k reads",
	}
	series := Series{Name: "Harmony-20%"}
	for i, interval := range []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second, 2 * time.Second, 5 * time.Second} {
		sc := Grid5000()
		sc.MonitorInterval = interval
		res, err := RunPolicy(RunSpec{
			Scenario: sc,
			Policy:   PolicySpec{Kind: PolicyHarmony, Tolerance: 0.2},
			Workload: ycsb.WorkloadA(),
			Threads:  90,
			Ops:      opts.OpsPerPoint,
			Seed:     opts.Seed + int64(i),
		})
		if err != nil {
			return Figure{}, err
		}
		y := 0.0
		if res.Report.ShadowSamples > 0 {
			y = float64(res.Report.StaleReads) / float64(res.Report.ShadowSamples) * 100000
		}
		series.Points = append(series.Points, Point{X: interval.Seconds(), Y: y})
		opts.progress("ablation interval=%v stale/100k=%.0f", interval, y)
	}
	fig.Series = append(fig.Series, series)
	return fig, nil
}

// AblationReadRepair compares staleness with background read repair enabled
// (the paper's Cassandra configuration) and disabled: repair narrows the
// window during which replicas diverge.
func AblationReadRepair(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "ablation-read-repair",
		Title:  "stale reads with and without background read repair (grid5000, eventual consistency)",
		XLabel: "threads",
		YLabel: "stale reads per 100k reads",
	}
	for _, repair := range []bool{true, false} {
		name := "read-repair on"
		if !repair {
			name = "read-repair off"
		}
		series := Series{Name: name}
		for ti, th := range opts.Threads {
			sc := Grid5000()
			sc.Spec.ReadRepairChance = 0
			if repair {
				sc.Spec.ReadRepairChance = 0.1
			}
			res, err := RunPolicy(RunSpec{
				Scenario: sc,
				Policy:   PolicySpec{Kind: PolicyEventual},
				Workload: ycsb.WorkloadA(),
				Threads:  th,
				Ops:      opts.OpsPerPoint,
				Seed:     opts.Seed + int64(ti),
			})
			if err != nil {
				return Figure{}, err
			}
			y := 0.0
			if res.Report.ShadowSamples > 0 {
				y = float64(res.Report.StaleReads) / float64(res.Report.ShadowSamples) * 100000
			}
			series.Points = append(series.Points, Point{X: float64(th), Y: y})
		}
		opts.progress("ablation read-repair=%v done", repair)
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// AblationVsQuorum compares Harmony against the obvious static middle
// ground, fixed QUORUM reads: Harmony matches quorum's staleness where it
// matters while keeping eventual-like latency when the estimate is low.
func AblationVsQuorum(opts Options) ([]Figure, error) {
	opts = opts.withDefaults()
	sc := Grid5000()
	policies := []PolicySpec{
		{Kind: PolicyHarmony, Tolerance: sc.HarmonyTolerances[0]},
		{Kind: PolicyQuorum},
		{Kind: PolicyEventual},
	}
	g, err := RunGrid(sc, policies, opts)
	if err != nil {
		return nil, err
	}
	lat := g.LatencyFigure("ablation-quorum-latency")
	lat.Title = "Harmony vs static QUORUM: p99 read latency (grid5000)"
	stale := g.StalenessFigure("ablation-quorum-staleness")
	stale.Title = "Harmony vs static QUORUM: stale reads (grid5000)"
	return []Figure{lat, stale}, nil
}

// AblationStrategy compares replica placement strategies: the paper's
// topology-aware placement (replicas spread over racks) against
// SimpleStrategy's ring-order placement, measuring p99 latency.
func AblationStrategy(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "ablation-strategy",
		Title:  "replica placement: NetworkTopologyStrategy vs SimpleStrategy (grid5000, eventual)",
		XLabel: "threads",
		YLabel: "99th percentile latency (ms)",
	}
	for _, topoAware := range []bool{true, false} {
		name := "NetworkTopologyStrategy"
		if !topoAware {
			name = "SimpleStrategy"
		}
		series := Series{Name: name}
		for ti, th := range opts.Threads {
			sc := Grid5000()
			sc.Spec.NetworkTopologyAware = topoAware
			res, err := RunPolicy(RunSpec{
				Scenario: sc,
				Policy:   PolicySpec{Kind: PolicyEventual},
				Workload: ycsb.WorkloadA(),
				Threads:  th,
				Ops:      opts.OpsPerPoint,
				Seed:     opts.Seed + int64(ti),
			})
			if err != nil {
				return Figure{}, err
			}
			series.Points = append(series.Points, Point{X: float64(th), Y: float64(res.Report.ReadLatency.P99()) / 1e6})
		}
		opts.progress("ablation strategy=%s done", name)
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// ErrIgnore standardizes skip messages for optional ablations.
var ErrIgnore = fmt.Errorf("bench: ablation skipped")

// Package server assembles one storage node of the replicated key-value
// store over the TCP transport: ring, gossip, cluster node, optional
// anti-entropy repair and commit-log durability, all on a real runtime. It
// is the embeddable core of cmd/harmony-server — and of harmony-bench's
// live backend, whose child processes run exactly this code path, so the
// live experiments measure the same binary logic a production node runs.
package server

import (
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/faults"
	"harmony/internal/gossip"
	"harmony/internal/obs"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/storage"
	"harmony/internal/transport"
	"harmony/internal/wire"
	"harmony/internal/ycsb"
)

// Member is one parsed -cluster entry.
type Member struct {
	ID   ring.NodeID
	Addr string
	DC   string
	Rack string
}

// ParseCluster parses a comma-separated "id=addr/dc/rack" cluster
// description (the -cluster flag format).
func ParseCluster(spec string) ([]Member, error) {
	var out []Member
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		eq := strings.SplitN(entry, "=", 2)
		if len(eq) != 2 {
			return nil, fmt.Errorf("entry %q: want id=addr/dc/rack", entry)
		}
		parts := strings.Split(eq[1], "/")
		if len(parts) != 3 {
			return nil, fmt.Errorf("entry %q: want id=addr/dc/rack", entry)
		}
		out = append(out, Member{
			ID:   ring.NodeID(eq[0]),
			Addr: parts[0],
			DC:   parts[1],
			Rack: parts[2],
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty cluster description")
	}
	return out, nil
}

// FormatCluster renders members back into the -cluster flag format.
func FormatCluster(members []Member) string {
	parts := make([]string, 0, len(members))
	for _, m := range members {
		dc, rack := m.DC, m.Rack
		if dc == "" {
			dc = "dc1"
		}
		if rack == "" {
			rack = "r1"
		}
		parts = append(parts, fmt.Sprintf("%s=%s/%s/%s", m.ID, m.Addr, dc, rack))
	}
	return strings.Join(parts, ",")
}

// Config assembles one storage node.
type Config struct {
	// ID must appear in Members; Listen is the local bind address.
	ID     ring.NodeID
	Listen string
	// Members is the full static cluster membership.
	Members []Member
	// RF is the replication factor; Vnodes the virtual nodes per member.
	RF     int
	Vnodes int
	// ReadRepairChance / HintedHandoff / HintQueueLimit mirror
	// cluster.Config.
	ReadRepairChance float64
	HintedHandoff    bool
	HintQueueLimit   int
	// CommitLog, when non-empty, enables write durability and replays the
	// log on startup. Superseded by DataDir; setting both is an error.
	CommitLog string
	// DataDir, when non-empty, backs the storage engine with the
	// bitcask-style persistent backend under this directory: writes are
	// durable, and a restarted node recovers its pre-crash rows from hint
	// files + log tail replay before serving. The server refuses to start
	// if the directory is locked by another process or stamped with a
	// different on-disk format version.
	DataDir string
	// FsyncInterval selects the persistent engine's durability mode:
	// <= 0 means group commit (writes ack on an fsync batch boundary),
	// > 0 fsyncs in the background every interval. Only used with DataDir.
	FsyncInterval time.Duration
	// GossipInterval is the heartbeat round interval; zero means 1s.
	GossipInterval time.Duration
	// Streams is the TCP transport's per-peer connection pool size.
	Streams int
	// NoBatch disables the transport's write coalescing (benchmarks).
	NoBatch bool
	// Repair enables anti-entropy Merkle repair; RepairInterval tunes its
	// scheduler cadence. Gossip's down->up transitions trigger priority
	// sessions with recovered peers.
	Repair         bool
	RepairInterval time.Duration
	// HotKeys, when positive, installs the standard two-group telemetry
	// partition used by the hotcold/churn experiments: YCSB keys with
	// index < HotKeys form group 0 (hot), everything else group 1. Zero
	// keeps the classic single implicit group. Online regrouping
	// supersedes the static assignment either way.
	HotKeys int64
	// KeySampleLimit enables per-key access sampling (regrouping input).
	KeySampleLimit int
	// MaxInFlight bounds concurrently coordinated operations on this node;
	// excess requests are shed fail-fast with wire.ErrOverloaded. Zero
	// means unlimited.
	MaxInFlight int
	// AdminAddr, when non-empty, serves the admin HTTP endpoint on this
	// address: /metrics (Prometheus text), /status (JSON snapshot),
	// /trace (control-loop + node event JSONL), /faults (fault-injection
	// control), /debug/pprof/* and /debug/vars. Use ":0" for an ephemeral
	// port (see Server.AdminAddr).
	AdminAddr string
	// LogLevel filters node diagnostics: "debug", "info" (default),
	// "warn", "error". An unknown value is a construction error.
	LogLevel string
	// Logf overrides the diagnostic sink (tests); nil emits through the
	// node's leveled logger at info level.
	Logf func(string, ...any)
}

// Server is a running storage node.
type Server struct {
	cfg       Config
	rt        *sim.RealRuntime
	tcp       *transport.TCPNode
	faults    *faults.Injector
	members   []string
	memberIDs []ring.NodeID
	gossiper  *gossip.Gossiper
	node      *cluster.Node
	commitLog io.Closer
	dataDir   *storage.DataDir // owned by the engine once the node exists
	logger    *obs.Logger
	opHist    *obs.OpLevelHist
	trace     *obs.Trace
	admin     *obs.Admin
}

// New builds and starts a node: listening, gossiping, serving.
func New(cfg Config) (*Server, error) {
	lvl, err := obs.ParseLogLevel(cfg.LogLevel)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	logger := obs.NewLogger(nil, string(cfg.ID), lvl)
	logf := cfg.Logf
	if logf == nil {
		logf = logger.Logf()
	}
	var infos []ring.NodeInfo
	peers := map[ring.NodeID]string{}
	var peerIDs []ring.NodeID
	found := false
	for _, m := range cfg.Members {
		dc, rack := m.DC, m.Rack
		if dc == "" {
			dc = "dc1"
		}
		if rack == "" {
			rack = "r1"
		}
		infos = append(infos, ring.NodeInfo{ID: m.ID, DC: dc, Rack: rack})
		peers[m.ID] = m.Addr
		peerIDs = append(peerIDs, m.ID)
		if m.ID == cfg.ID {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("server: id %q not present in members", cfg.ID)
	}
	if cfg.RF <= 0 {
		cfg.RF = 3
	}
	if cfg.Vnodes <= 0 {
		cfg.Vnodes = 16
	}
	topo, err := ring.NewTopology(infos)
	if err != nil {
		return nil, fmt.Errorf("server: topology: %w", err)
	}
	rng, err := ring.Build(topo, cfg.Vnodes)
	if err != nil {
		return nil, fmt.Errorf("server: ring: %w", err)
	}

	s := &Server{
		cfg:    cfg,
		rt:     sim.NewRealRuntime(),
		logger: logger,
		opHist: obs.NewOpLevelHist(),
		trace:  obs.NewTrace(1024),
	}

	var engineOpts storage.Options
	if cfg.CommitLog != "" && cfg.DataDir != "" {
		s.rt.Stop()
		return nil, fmt.Errorf("server: -commitlog and -data-dir are mutually exclusive (the data dir subsumes the commit log)")
	}
	if cfg.CommitLog != "" {
		cl, err := storage.OpenFileCommitLog(cfg.CommitLog)
		if err != nil {
			s.rt.Stop()
			return nil, fmt.Errorf("server: commit log: %w", err)
		}
		s.commitLog = cl
		engineOpts.CommitLog = cl
	}
	if cfg.DataDir != "" {
		// Pre-flight the fallible checks so a locked or version-mismatched
		// data dir is a startup refusal, not an engine panic. The engine
		// takes ownership of the acquired dir; node.Stop releases it.
		dd, err := storage.AcquireDataDir(cfg.DataDir)
		if err != nil {
			s.rt.Stop()
			return nil, fmt.Errorf("server: %w", err)
		}
		s.dataDir = dd
		engineOpts.Persist = &storage.PersistOptions{
			Dir:           dd,
			FsyncInterval: cfg.FsyncInterval,
		}
	}

	// The transport starts with no handler (inbound frames drop like lost
	// packets) and is bound once the node exists — it is the node's Sender,
	// so one of the two must come first.
	tcp, err := transport.NewTCPNode(transport.TCPConfig{
		ID:      cfg.ID,
		Listen:  cfg.Listen,
		Peers:   peers,
		Streams: cfg.Streams,
		NoBatch: cfg.NoBatch,
		Logf:    logf,
	}, s.rt, nil)
	if err != nil {
		s.closePartial()
		return nil, err
	}
	s.tcp = tcp

	// Every outbound frame — gossip and cluster alike — leaves through the
	// fault injector, so a POST /faults partition severs this node exactly
	// the way the simulated injector severs a sim node (gossip included:
	// peers across the cut go DOWN, hints queue, fail-fast kicks in).
	// Unarmed it costs one atomic load per send.
	h := fnv.New64a()
	h.Write([]byte(cfg.ID))
	s.faults = faults.New(s.rt, int64(h.Sum64()), tcp)
	for _, m := range cfg.Members {
		s.members = append(s.members, string(m.ID))
		s.memberIDs = append(s.memberIDs, m.ID)
	}

	s.gossiper = gossip.New(gossip.Config{
		ID:       cfg.ID,
		Peers:    peerIDs,
		Interval: cfg.GossipInterval,
		// A recovered peer immediately gets a priority repair session: the
		// down->up transition is the live-cluster analogue of the simulated
		// SetUp hook.
		OnRecover: func(peer ring.NodeID) {
			if s.node == nil {
				return
			}
			if m := s.node.RepairManager(); m != nil {
				m.PeerRecovered(peer)
			}
		},
	}, s.rt, s.faults)

	ccfg := cluster.Config{
		ID:               cfg.ID,
		Ring:             rng,
		Strategy:         ring.NetworkTopologyStrategy{RF: cfg.RF},
		ReadRepairChance: cfg.ReadRepairChance,
		HintedHandoff:    cfg.HintedHandoff,
		HintQueueLimit:   cfg.HintQueueLimit,
		Engine:           engineOpts,
		KeySampleLimit:   cfg.KeySampleLimit,
		MaxInFlight:      cfg.MaxInFlight,
		Alive:            s.gossiper.Alive,
		AliveCount:       s.aliveMembers,
		OpHist:           s.opHist,
		Trace:            s.trace,
	}
	if cfg.Repair {
		ccfg.Repair.Enabled = true
		ccfg.Repair.Interval = cfg.RepairInterval
	}
	if cfg.HotKeys > 0 {
		ccfg.Groups = 2
		ccfg.GroupFn = HotColdGroupFn(cfg.HotKeys)
	}
	s.node = cluster.New(ccfg, s.rt, s.faults)

	if cfg.DataDir != "" {
		// Recovery already ran inside cluster.New → storage.Open: the keydir
		// was rebuilt from hint files + tail replay before this line.
		logf("recovered %d rows from %s", s.node.Engine().Recovered(), cfg.DataDir)
	}

	// Replay the durability log into the engine before serving traffic.
	if cfg.CommitLog != "" {
		replayed := 0
		if err := storage.Replay(cfg.CommitLog, func(key []byte, v wire.Value) error {
			_, err := s.node.Engine().Apply(key, v)
			replayed++
			return err
		}); err != nil {
			s.closePartial()
			return nil, fmt.Errorf("server: replay: %w", err)
		}
		if replayed > 0 {
			logf("replayed %d commit-log records", replayed)
		}
	}

	tcp.SetHandler(gossip.Mux{Gossip: s.gossiper, Rest: s.node})
	s.node.Start()
	s.gossiper.Start()

	if cfg.AdminAddr != "" {
		admin, err := obs.StartAdmin(cfg.AdminAddr, obs.AdminConfig{
			Registry: s.buildRegistry(),
			Trace:    s.trace,
			Status:   func() any { return s.status() },
			Faults:   faults.Handler{Inj: s.faults, Membership: s.members},
		})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		s.admin = admin
		logger.Infof("admin endpoint on http://%s (/metrics /status /trace /debug/pprof)", admin.Addr())
	}
	return s, nil
}

// HotColdGroupFn is the standard two-group partition: YCSB key indexes
// below hotKeys are group 0 (hot), everything else group 1. Exported so the
// bench's client-side controllers install the byte-identical function the
// server nodes tally with.
func HotColdGroupFn(hotKeys int64) func(key []byte) int {
	return func(key []byte) int {
		if idx, ok := ycsb.KeyIndex(key); ok && idx < hotKeys {
			return 0
		}
		return 1
	}
}

// Addr is the transport's bound listen address.
func (s *Server) Addr() net.Addr { return s.tcp.Addr() }

// aliveMembers counts cluster members (self included — the detector always
// believes in itself) the gossip detector currently holds UP. It feeds
// StatsResponse.AliveMembers so the monitor, and through it the
// controller's availability clamp, sees each side of a partition shrink to
// the members it can actually reach.
func (s *Server) aliveMembers() int {
	n := 0
	for _, id := range s.memberIDs {
		if s.gossiper.Alive(id) {
			n++
		}
	}
	return n
}

// Node exposes the cluster node (tests, embedders).
func (s *Server) Node() *cluster.Node { return s.node }

// Transport exposes the TCP endpoint (stats).
func (s *Server) Transport() *transport.TCPNode { return s.tcp }

// Faults exposes the node's fault-injection plane (tests, embedders); the
// admin endpoint drives the same injector via POST /faults.
func (s *Server) Faults() *faults.Injector { return s.faults }

// AdminAddr is the admin endpoint's bound address ("" when disabled) —
// useful with Config.AdminAddr ":0".
func (s *Server) AdminAddr() string {
	if s.admin == nil {
		return ""
	}
	return s.admin.Addr()
}

// Trace exposes the node's event ring (tests, embedders).
func (s *Server) Trace() *obs.Trace { return s.trace }

// Logger exposes the node's leveled logger.
func (s *Server) Logger() *obs.Logger { return s.logger }

// Close stops serving: admin, gossip, node, transport, runtime, commit log.
func (s *Server) Close() {
	if s.admin != nil {
		_ = s.admin.Close()
		s.admin = nil
	}
	if s.gossiper != nil {
		s.gossiper.Stop()
	}
	if s.node != nil {
		s.node.Stop()
	}
	s.closePartial()
}

func (s *Server) closePartial() {
	if s.tcp != nil {
		_ = s.tcp.Close()
	}
	s.rt.Stop()
	if s.commitLog != nil {
		_ = s.commitLog.Close()
	}
	// The persistent engine owns the data dir once the node exists (Close
	// is idempotent); before that, release the pre-flight lock directly.
	if s.node != nil {
		_ = s.node.Engine().Close()
	} else if s.dataDir != nil {
		_ = s.dataDir.Release()
	}
}

// Main runs a server from command-line arguments and blocks until
// SIGINT/SIGTERM. It is the whole of cmd/harmony-server, and the entry
// point harmony-bench's re-exec'd live-cluster children call — both run
// this exact function, so flags mean the same thing everywhere.
func Main(args []string) int {
	fs := flag.NewFlagSet("harmony-server", flag.ExitOnError)
	var (
		id          = fs.String("id", "", "this node's id (must appear in -cluster)")
		listen      = fs.String("listen", ":7000", "listen address")
		clusterSpec = fs.String("cluster", "", "comma list of id=addr/dc/rack")
		rf          = fs.Int("rf", 3, "replication factor")
		vnodes      = fs.Int("vnodes", 16, "virtual nodes per member")
		readRepair  = fs.Float64("read-repair-chance", 0.1, "probability a read fans out for repair")
		hints       = fs.Bool("hinted-handoff", true, "queue hints for down replicas")
		hintLimit   = fs.Int("hint-queue-limit", 0, "cap queued hints (0 = unlimited; overflow drops mutations)")
		commitLog   = fs.String("commitlog", "", "path to a commit log file (legacy durability); empty disables")
		dataDir     = fs.String("data-dir", "", "persistent storage directory (bitcask engine; recovers on restart); empty keeps storage in memory")
		fsyncEvery  = fs.Duration("fsync-interval", 0, "background fsync cadence for -data-dir; 0 = group commit (writes ack on fsync batch boundaries)")
		gossipEvery = fs.Duration("gossip-interval", time.Second, "gossip round interval")
		streams     = fs.Int("streams", 1, "TCP connections pooled per peer")
		noBatch     = fs.Bool("no-batch", false, "disable transport write coalescing (benchmarks)")
		repairOn    = fs.Bool("repair", false, "enable anti-entropy Merkle repair")
		repairEvery = fs.Duration("repair-interval", time.Second, "anti-entropy scheduler cadence")
		hotKeys     = fs.Int64("hot-keys", 0, "two-group telemetry split: YCSB key index < hot-keys is group 0")
		sampleLimit = fs.Int("key-sample-limit", 0, "per-key access samples on stats responses (0 disables)")
		maxInFlight = fs.Int("max-inflight", 0, "bound on concurrently coordinated ops; excess shed with 'overloaded' (0 = unlimited)")
		adminAddr   = fs.String("admin-addr", "", "admin HTTP endpoint (/metrics /status /trace /debug/pprof); empty disables")
		logLevel    = fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
	)
	_ = fs.Parse(args)
	if *id == "" || *clusterSpec == "" {
		fmt.Fprintln(os.Stderr, "harmony-server: -id and -cluster are required")
		fs.Usage()
		return 2
	}
	lvl, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "harmony-server: -log-level: %v\n", err)
		return 2
	}
	logger := obs.NewLogger(nil, *id, lvl)
	members, err := ParseCluster(*clusterSpec)
	if err != nil {
		logger.Errorf("-cluster: %v", err)
		return 1
	}
	s, err := New(Config{
		ID:               ring.NodeID(*id),
		Listen:           *listen,
		Members:          members,
		RF:               *rf,
		Vnodes:           *vnodes,
		ReadRepairChance: *readRepair,
		HintedHandoff:    *hints,
		HintQueueLimit:   *hintLimit,
		CommitLog:        *commitLog,
		DataDir:          *dataDir,
		FsyncInterval:    *fsyncEvery,
		GossipInterval:   *gossipEvery,
		Streams:          *streams,
		NoBatch:          *noBatch,
		Repair:           *repairOn,
		RepairInterval:   *repairEvery,
		HotKeys:          *hotKeys,
		KeySampleLimit:   *sampleLimit,
		MaxInFlight:      *maxInFlight,
		AdminAddr:        *adminAddr,
		LogLevel:         *logLevel,
	})
	if err != nil {
		logger.Errorf("%v", err)
		return 1
	}
	logger.Infof("serving on %s (rf=%d, %d members)", s.Addr(), *rf, len(members))
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	logger.Infof("shutting down")
	s.Close()
	return 0
}

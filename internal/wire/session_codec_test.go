package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"testing/quick"
)

// clockFrom builds a clock from parallel fuzz inputs, trimming to the
// shorter slice so every generated pair is usable.
func clockFrom(nodes []string, counters []uint64) []ClockEntry {
	n := len(nodes)
	if len(counters) < n {
		n = len(counters)
	}
	if n == 0 {
		return nil
	}
	c := make([]ClockEntry, n)
	for i := 0; i < n; i++ {
		c[i] = ClockEntry{Node: nodes[i], Counter: counters[i]}
	}
	return c
}

// TestRoundTripPropertySessionToken drives the session-token-bearing
// messages through encode/decode with randomized clocks: the token on
// ReadRequest, the stamped clock on WriteResponse, and the version clock
// inside Value. bodySize must agree with the encoding for each (the
// zero-copy framing contract).
func TestRoundTripPropertySessionToken(t *testing.T) {
	if err := quick.Check(func(id uint64, key []byte, ts int64, nodes []string, counters []uint64) bool {
		if len(key) == 0 {
			key = nil // the codec decodes empty as nil
		}
		clock := clockFrom(nodes, counters)
		for _, in := range []Message{
			ReadRequest{ID: id, Key: key, Level: Session, Token: clock},
			WriteResponse{ID: id, OK: true, Timestamp: ts, Clock: clock},
			ReadResponse{ID: id, Found: true, Value: Value{Data: key, Timestamp: ts, Clock: clock}},
			Mutation{ID: id, Key: key, Value: Value{Data: key, Timestamp: ts, Clock: clock}},
		} {
			want, err := bodySize(in)
			if err != nil {
				return false
			}
			b, err := Encode(nil, in)
			if err != nil {
				return false
			}
			n, sz := binary.Uvarint(b)
			if sz <= 0 || int(n) != len(b)-sz || int(n) != want {
				return false
			}
			out, used, err := Decode(b)
			if err != nil || used != len(b) {
				return false
			}
			if !reflect.DeepEqual(out, in) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSessionTokenEncodeZeroAllocs pins the session extensions to the
// zero-copy path: encoding token- and clock-bearing messages into a
// pre-sized buffer must not allocate, exactly like their legacy shapes.
func TestSessionTokenEncodeZeroAllocs(t *testing.T) {
	clock := []ClockEntry{
		{Node: "node-000001", Counter: 1234567},
		{Node: "node-000002", Counter: 7},
		{Node: "node-000003", Counter: 1 << 50},
	}
	msgs := []Message{
		ReadRequest{ID: 7, Key: []byte("user00001234"), Level: Session, Token: clock},
		WriteResponse{ID: 4, OK: true, Timestamp: 99, Clock: clock},
		Mutation{ID: 42, Key: bytes.Repeat([]byte("k"), 24),
			Value: Value{Data: bytes.Repeat([]byte("v"), 1024), Timestamp: 1234567, Clock: clock}},
		ReadResponse{ID: 9, Found: true, Achieved: Session,
			Value: Value{Data: bytes.Repeat([]byte("p"), 256), Timestamp: 55, Clock: clock}},
	}
	buf := make([]byte, 0, 8192)
	for _, m := range msgs {
		m := m
		allocs := testing.AllocsPerRun(200, func() {
			var err error
			if buf, err = Encode(buf[:0], m); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%T: Encode with session clock allocates %.1f/op, want 0", m, allocs)
		}
	}
}

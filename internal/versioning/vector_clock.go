// Package versioning gives Harmony's values causal identity. A value's
// version is a vector clock — one (coordinator, counter) entry per
// coordinator that has written it, where counters are the coordinator's
// write timestamps — so two versions can be compared causally: one descends
// from the other, they are equal, or they are concurrent siblings. Sibling
// resolution is pluggable (Resolver); the default remains last-writer-wins,
// which keeps legacy clock-less values behaving exactly as before and keeps
// anti-entropy byte-convergent, because every replica resolves the same pair
// of siblings to the same winner.
package versioning

import (
	"sort"

	"harmony/internal/wire"
)

// Relation is the causal relationship between two clocks.
type Relation int8

// Causal relationships.
const (
	// Equal: identical histories.
	Equal Relation = iota
	// Descends: the left clock has seen everything the right has, and more.
	Descends
	// DescendedBy: the right clock dominates the left.
	DescendedBy
	// Concurrent: each side has writes the other has not seen — siblings.
	Concurrent
)

func (r Relation) String() string {
	switch r {
	case Equal:
		return "equal"
	case Descends:
		return "descends"
	case DescendedBy:
		return "descended-by"
	case Concurrent:
		return "concurrent"
	}
	return "relation(?)"
}

// Clock is a vector clock: entries sorted by Node, counters strictly
// positive. The zero value (nil) is the empty history, which every non-empty
// clock descends from. Clocks are value types; mutating helpers return a new
// or normalized slice and never alias their input's backing array unless
// documented.
type Clock []wire.ClockEntry

// Get returns node's counter, or 0 when node has never stamped the clock.
func (c Clock) Get(node string) uint64 {
	i := sort.Search(len(c), func(i int) bool { return c[i].Node >= node })
	if i < len(c) && c[i].Node == node {
		return c[i].Counter
	}
	return 0
}

// Normalize sorts entries by node and collapses duplicates to their highest
// counter, dropping zero counters. It returns c reordered in place when
// already well-formed, so normalizing a sorted clock is allocation-free.
func Normalize(c Clock) Clock {
	if len(c) == 0 {
		return nil
	}
	sorted := true
	for i := 1; i < len(c); i++ {
		if c[i-1].Node >= c[i].Node {
			sorted = false
			break
		}
	}
	if sorted && c[0].Counter != 0 {
		zero := false
		for _, e := range c {
			if e.Counter == 0 {
				zero = true
				break
			}
		}
		if !zero {
			return c
		}
	}
	out := make(Clock, len(c))
	copy(out, c)
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	w := 0
	for _, e := range out {
		if e.Counter == 0 {
			continue
		}
		if w > 0 && out[w-1].Node == e.Node {
			if e.Counter > out[w-1].Counter {
				out[w-1].Counter = e.Counter
			}
			continue
		}
		out[w] = e
		w++
	}
	return out[:w]
}

// Compare reports the causal relation of a to b. Both clocks must be
// normalized (sorted, deduplicated) — clocks built via Stamp/Merge always
// are.
func Compare(a, b Clock) Relation {
	var aHas, bHas bool // a (resp. b) has an entry exceeding the other
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Node < b[j].Node:
			aHas = true
			i++
		case a[i].Node > b[j].Node:
			bHas = true
			j++
		default:
			if a[i].Counter > b[j].Counter {
				aHas = true
			} else if a[i].Counter < b[j].Counter {
				bHas = true
			}
			i++
			j++
		}
	}
	if i < len(a) {
		aHas = true
	}
	if j < len(b) {
		bHas = true
	}
	switch {
	case aHas && bHas:
		return Concurrent
	case aHas:
		return Descends
	case bHas:
		return DescendedBy
	default:
		return Equal
	}
}

// Dominates reports whether a has observed everything in b (Equal counts).
func Dominates(a, b Clock) bool {
	r := Compare(a, b)
	return r == Equal || r == Descends
}

// Merge returns the entrywise maximum of a and b in a fresh slice.
func Merge(a, b Clock) Clock {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(Clock, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Node < b[j].Node:
			out = append(out, a[i])
			i++
		case a[i].Node > b[j].Node:
			out = append(out, b[j])
			j++
		default:
			e := a[i]
			if b[j].Counter > e.Counter {
				e.Counter = b[j].Counter
			}
			out = append(out, e)
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Stamp returns a copy of c with node's counter raised to at least counter.
// Stamping with a counter at or below the current entry still returns a
// well-formed clock (unchanged content, fresh slice).
func Stamp(c Clock, node string, counter uint64) Clock {
	return Merge(c, Clock{{Node: node, Counter: counter}})
}

// MaxCounter returns the largest counter in c (0 for the empty clock).
// Because Harmony's counters are coordinator write timestamps drawn from one
// simulated/global clock, MaxCounter is a recency watermark: any value whose
// write timestamp reaches it is at least as recent (in the LWW total order)
// as every write the clock has observed.
func MaxCounter(c Clock) uint64 {
	var m uint64
	for _, e := range c {
		if e.Counter > m {
			m = e.Counter
		}
	}
	return m
}

// Covers reports whether the value (clock vc, write timestamp ts) satisfies
// a session token: either the value's clock causally descends from the
// token, or — when the vector path cannot prove it (legacy clock-less
// values, watermark entries folded in from other keys in the same session
// bucket) — the value's timestamp reaches the token's recency watermark.
// The timestamp fallback is sound under Harmony's single global write clock:
// counters ARE timestamps, so ts >= MaxCounter(token) means the value is no
// older in the LWW order than anything the session has seen.
func Covers(vc Clock, ts int64, token Clock) bool {
	if len(token) == 0 {
		return true
	}
	if len(vc) > 0 && Dominates(vc, token) {
		return true
	}
	return ts > 0 && uint64(ts) >= MaxCounter(token)
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTraceWraparound(t *testing.T) {
	tr := NewTrace(16)
	for i := 0; i < 100; i++ {
		tr.Add(Event{Kind: EventLevel, Group: i})
	}
	if got := tr.Len(); got != 16 {
		t.Fatalf("len = %d, want 16", got)
	}
	if got := tr.Dropped(); got != 84 {
		t.Fatalf("dropped = %d, want 84", got)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("events = %d, want 16", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(85 + i)
		if e.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Group != int(wantSeq)-1 {
			t.Fatalf("event %d group = %d, want %d", i, e.Group, wantSeq-1)
		}
	}
}

func TestTraceSince(t *testing.T) {
	tr := NewTrace(32)
	for i := 0; i < 10; i++ {
		tr.Add(Event{Kind: EventRegroup})
	}
	if got := len(tr.Since(7)); got != 3 {
		t.Fatalf("since(7) = %d events, want 3", got)
	}
	if got := tr.Since(10); got != nil {
		t.Fatalf("since(10) = %v, want nil", got)
	}
	if got := len(tr.Since(0)); got != 10 {
		t.Fatalf("since(0) = %d events, want 10", got)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if seq := tr.Add(Event{Kind: EventLevel}); seq != 0 {
		t.Fatalf("nil Add = %d", seq)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil trace not inert")
	}
}

// Concurrent appenders racing a polling reader across many wraps: every
// sequence number is assigned exactly once, reads always see contiguous
// ascending sequences, and nothing trips the race detector.
func TestTraceConcurrentWraparound(t *testing.T) {
	tr := NewTrace(32)
	const writers, perW = 8, 500

	var wg sync.WaitGroup
	seqs := make([][]uint64, writers)
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := tr.Since(last)
			for i, e := range evs {
				if i > 0 && e.Seq != evs[i-1].Seq+1 {
					t.Errorf("non-contiguous read: %d after %d", e.Seq, evs[i-1].Seq)
					return
				}
			}
			if len(evs) > 0 {
				last = evs[len(evs)-1].Seq
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seqs[w] = make([]uint64, perW)
			for i := 0; i < perW; i++ {
				seqs[w][i] = tr.Add(Event{Kind: EventLevel, Node: "n", Group: w})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	seen := make(map[uint64]bool, writers*perW)
	for _, ss := range seqs {
		prev := uint64(0)
		for _, s := range ss {
			if s == 0 || seen[s] {
				t.Fatalf("sequence %d duplicated or zero", s)
			}
			if s <= prev {
				t.Fatalf("writer sequences not increasing: %d after %d", s, prev)
			}
			seen[s] = true
			prev = s
		}
	}
	if len(seen) != writers*perW {
		t.Fatalf("assigned %d sequences, want %d", len(seen), writers*perW)
	}
	if got := tr.Dropped(); got != writers*perW-32 {
		t.Fatalf("dropped = %d, want %d", got, writers*perW-32)
	}
}

func TestTraceWriteJSONL(t *testing.T) {
	tr := NewTrace(16)
	tr.Add(Event{Kind: EventLevel, Group: 2, From: "ONE", To: "QUORUM", Estimate: 0.12})
	tr.Add(Event{Kind: EventDivergenceHold, Group: 2, Divergence: 0.3})

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		evs = append(evs, e)
	}
	if len(evs) != 2 {
		t.Fatalf("lines = %d, want 2", len(evs))
	}
	if evs[0].Kind != EventLevel || evs[0].To != "QUORUM" || evs[0].Estimate != 0.12 {
		t.Fatalf("event 0 round-trip = %+v", evs[0])
	}
	if evs[1].Kind != EventDivergenceHold || evs[1].Divergence != 0.3 {
		t.Fatalf("event 1 round-trip = %+v", evs[1])
	}
	if evs[0].AtMs == 0 {
		t.Fatal("AtMs not stamped")
	}
}

package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"harmony/internal/wire"
)

func TestKeyStatsObserveAndDecay(t *testing.T) {
	ks := NewKeyStats(0.5)
	ks.ObserveRead([]byte("a"))
	ks.ObserveWrite([]byte("a"))
	ks.ObserveRead([]byte("b"))
	if ks.Len() != 2 {
		t.Fatalf("len = %d", ks.Len())
	}
	// Many decay ticks age both keys out entirely.
	for i := 0; i < 12; i++ {
		ks.Tick()
	}
	if ks.Len() != 0 {
		t.Fatalf("after decay len = %d", ks.Len())
	}
}

func TestNewCategorizerValidation(t *testing.T) {
	if _, err := NewCategorizer(1, 0.5, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestReclusterNeedsEnoughKeys(t *testing.T) {
	ks := NewKeyStats(1)
	ks.ObserveRead([]byte("only"))
	cat, err := NewCategorizer(3, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Recluster(ks, 0.05, 0.8); err == nil {
		t.Fatal("clustered with fewer keys than categories")
	}
}

func TestReclusterEmptyStatsErrorsCleanly(t *testing.T) {
	cat, err := NewCategorizer(2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Recluster(NewKeyStats(1), 0.05, 0.8); err == nil {
		t.Fatal("reclustered an empty KeyStats")
	}
	if got := cat.ToleranceFor([]byte("x")); got != 0.5 {
		t.Fatalf("failed recluster disturbed the default tolerance: %v", got)
	}
}

func TestReclusterIdenticalFeaturesNoNaN(t *testing.T) {
	// Every key has the exact same access pattern: k-means collapses onto
	// one point, empty clusters keep duplicate centroids, and tolerances
	// must still come out finite and in-bounds.
	ks := NewKeyStats(1)
	for i := 0; i < 20; i++ {
		key := []byte(fmt.Sprintf("same%d", i))
		for j := 0; j < 10; j++ {
			ks.ObserveRead(key)
			ks.ObserveWrite(key)
		}
	}
	cat, _ := NewCategorizer(3, 0.5, 9)
	if err := cat.Recluster(ks, 0.05, 0.8); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, c := range cat.Categories() {
		if math.IsNaN(c.Tolerance) || c.Tolerance < 0.05-1e-9 || c.Tolerance > 0.8+1e-9 {
			t.Fatalf("category %d tolerance = %v", i, c.Tolerance)
		}
		if math.IsNaN(c.Centroid[0]) || math.IsNaN(c.Centroid[1]) {
			t.Fatalf("category %d centroid = %v", i, c.Centroid)
		}
		total += c.Keys
	}
	if total != 20 {
		t.Fatalf("assigned %d of 20 keys", total)
	}
	for i := 0; i < 20; i++ {
		tol := cat.ToleranceFor([]byte(fmt.Sprintf("same%d", i)))
		if math.IsNaN(tol) {
			t.Fatalf("same%d tolerance is NaN", i)
		}
	}
}

func TestReclusterSanitizesToleranceBounds(t *testing.T) {
	ks := NewKeyStats(1)
	populateBimodal(ks, 10, 10)
	cat, _ := NewCategorizer(2, 0.5, 5)
	// NaN bounds are rejected without touching state.
	if err := cat.Recluster(ks, math.NaN(), 0.8); err == nil {
		t.Fatal("NaN tolerance bound accepted")
	}
	// Reversed and out-of-range bounds are swapped/clamped, never emitted.
	if err := cat.Recluster(ks, 1.7, -0.3); err != nil {
		t.Fatal(err)
	}
	for i, c := range cat.Categories() {
		if c.Tolerance < 0 || c.Tolerance > 1 || math.IsNaN(c.Tolerance) {
			t.Fatalf("category %d tolerance = %v, want within [0, 1]", i, c.Tolerance)
		}
	}
}

func TestReclusterCanonicalContentionOrder(t *testing.T) {
	ks := NewKeyStats(1)
	populateBimodal(ks, 25, 25)
	cat, _ := NewCategorizer(2, 0.5, 11)
	if err := cat.Recluster(ks, 0.05, 0.8); err != nil {
		t.Fatal(err)
	}
	cats := cat.Categories()
	for i := 1; i < len(cats); i++ {
		if cats[i].Tolerance < cats[i-1].Tolerance {
			t.Fatalf("tolerances not nondecreasing: %v", cats)
		}
	}
	// Category 0 is the write-contended one, so the hot keys live there.
	if got := cat.Assignment()["hot0"]; got != 0 {
		t.Fatalf("hot key in category %d, want the canonical tightest (0)", got)
	}
	if got := cat.Assignment()["cold0"]; got != 1 {
		t.Fatalf("cold key in category %d, want the canonical loosest (1)", got)
	}
}

func TestKeyStatsAddIgnoresDegenerateWeights(t *testing.T) {
	ks := NewKeyStats(1)
	ks.Add([]byte("big"), 10, 5)
	ks.Add([]byte("small"), 1, 0)
	ks.Add([]byte("junk"), math.NaN(), math.Inf(1)) // ignored
	ks.Add([]byte("junk"), -3, 0)                   // ignored
	if ks.Len() != 2 {
		t.Fatalf("len = %d, want 2 (junk weights ignored)", ks.Len())
	}
	// The merged weights feed clustering: both keys are clusterable.
	cat, _ := NewCategorizer(2, 0.5, 1)
	if err := cat.Recluster(ks, 0.1, 0.9); err != nil {
		t.Fatal(err)
	}
	if got := len(cat.Assignment()); got != 2 {
		t.Fatalf("assigned %d keys, want 2", got)
	}
}

// populateBimodal creates two obvious access-pattern populations: hot
// write-contended keys and cold read-only keys.
func populateBimodal(ks *KeyStats, hot, cold int) {
	for i := 0; i < hot; i++ {
		key := []byte(fmt.Sprintf("hot%d", i))
		for j := 0; j < 50; j++ {
			ks.ObserveWrite(key)
			ks.ObserveRead(key)
		}
	}
	for i := 0; i < cold; i++ {
		key := []byte(fmt.Sprintf("cold%d", i))
		for j := 0; j < 20; j++ {
			ks.ObserveRead(key)
		}
	}
}

func TestCategorizerSeparatesHotAndCold(t *testing.T) {
	ks := NewKeyStats(1)
	populateBimodal(ks, 30, 30)
	cat, err := NewCategorizer(2, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Recluster(ks, 0.05, 0.8); err != nil {
		t.Fatal(err)
	}
	cats := cat.Categories()
	if len(cats) != 2 {
		t.Fatalf("categories = %d", len(cats))
	}
	// Every hot key must get a tighter tolerance than every cold key.
	hotTol := cat.ToleranceFor([]byte("hot0"))
	coldTol := cat.ToleranceFor([]byte("cold0"))
	if hotTol >= coldTol {
		t.Fatalf("hot tolerance %v not tighter than cold %v", hotTol, coldTol)
	}
	if hotTol != 0.05 || coldTol != 0.8 {
		t.Fatalf("tolerances = %v / %v, want endpoints 0.05 / 0.8", hotTol, coldTol)
	}
	for i := 0; i < 30; i++ {
		if got := cat.ToleranceFor([]byte(fmt.Sprintf("hot%d", i))); got != hotTol {
			t.Fatalf("hot%d tolerance %v", i, got)
		}
		if got := cat.ToleranceFor([]byte(fmt.Sprintf("cold%d", i))); got != coldTol {
			t.Fatalf("cold%d tolerance %v", i, got)
		}
	}
	// Unknown keys use the default.
	if got := cat.ToleranceFor([]byte("never-seen")); got != 0.5 {
		t.Fatalf("default tolerance = %v", got)
	}
}

func TestCategorizerDeterministic(t *testing.T) {
	run := func() []Category {
		ks := NewKeyStats(1)
		populateBimodal(ks, 20, 20)
		cat, _ := NewCategorizer(2, 0.5, 42)
		if err := cat.Recluster(ks, 0.1, 0.9); err != nil {
			t.Fatal(err)
		}
		return cat.Categories()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic clustering: %+v vs %+v", a, b)
		}
	}
}

func TestCategorizerToleranceBoundsProperty(t *testing.T) {
	if err := quick.Check(func(seed int64, nKeys uint8) bool {
		n := int(nKeys%40) + 4
		ks := NewKeyStats(1)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			key := []byte(fmt.Sprintf("k%d", i))
			for j := 0; j < r.Intn(20)+1; j++ {
				if r.Intn(2) == 0 {
					ks.ObserveRead(key)
				} else {
					ks.ObserveWrite(key)
				}
			}
		}
		cat, _ := NewCategorizer(3, 0.5, seed)
		if err := cat.Recluster(ks, 0.1, 0.7); err != nil {
			return true // not enough distinct keys; fine
		}
		for i := 0; i < n; i++ {
			tol := cat.ToleranceFor([]byte(fmt.Sprintf("k%d", i)))
			if tol < 0.1-1e-9 || tol > 0.7+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPerKeyLevels(t *testing.T) {
	ks := NewKeyStats(1)
	populateBimodal(ks, 10, 10)
	cat, _ := NewCategorizer(2, 0.5, 3)
	if err := cat.Recluster(ks, 0.02, 0.9); err != nil {
		t.Fatal(err)
	}
	pkl := &PerKeyLevels{Cat: cat}
	pkl.SetN(5)
	// Moderate contention: the estimate lands between the hot category's
	// 2% tolerance and the cold category's 90%.
	pkl.Observe(Observation{ReadRate: 300, WriteInterval: 0.005, Latency: time.Millisecond})
	hot := pkl.ReadLevelFor([]byte("hot0"))
	cold := pkl.ReadLevelFor([]byte("cold0"))
	if hot == wire.One {
		t.Fatal("hot key stayed at ONE under heavy contention")
	}
	if cold != wire.One {
		t.Fatalf("cold key escalated to %v; its category tolerates staleness", cold)
	}
	// Quiet cluster: everyone relaxes to ONE.
	pkl.Observe(Observation{ReadRate: 1, WriteInterval: 10, Latency: 100 * time.Microsecond})
	if got := pkl.ReadLevelFor([]byte("hot0")); got != wire.One {
		t.Fatalf("hot key = %v on a quiet cluster", got)
	}
}

func TestPerKeyLevelsGroupModels(t *testing.T) {
	// With GroupFn set, each key is judged against its own group's
	// measured rates: a tight-tolerance key relaxes to ONE when its group
	// is quiet, even while the global model screams contention.
	ks := NewKeyStats(1)
	populateBimodal(ks, 10, 10)
	cat, _ := NewCategorizer(2, 0.5, 3)
	if err := cat.Recluster(ks, 0.02, 0.9); err != nil {
		t.Fatal(err)
	}
	pkl := &PerKeyLevels{Cat: cat, GroupFn: func(key []byte) int {
		if len(key) > 0 && key[0] == 'h' {
			return 0
		}
		return 1
	}}
	pkl.SetN(5)
	contended := GroupRates{ReadRate: 300, WriteInterval: 0.005}
	quiet := GroupRates{ReadRate: 1, WriteInterval: 10}

	// Hot keys' group contended: they escalate.
	pkl.Observe(Observation{ReadRate: 300, WriteInterval: 0.005, Latency: time.Millisecond,
		Groups: []GroupRates{contended, quiet}})
	if got := pkl.ReadLevelFor([]byte("hot0")); got == wire.One {
		t.Fatal("hot key stayed at ONE while its group is contended")
	}
	// Same global picture, but the hot keys' group is now the quiet one:
	// the per-group model must relax them even though the global model
	// (and the other group) still shows contention.
	pkl.Observe(Observation{ReadRate: 300, WriteInterval: 0.005, Latency: time.Millisecond,
		Groups: []GroupRates{quiet, contended}})
	if got := pkl.ReadLevelFor([]byte("hot0")); got != wire.One {
		t.Fatalf("hot key = %v; its group is quiet, want ONE", got)
	}
	// Out-of-range GroupFn results clamp to group 0, mirroring the
	// cluster nodes' telemetry clamp: here group 0 is contended while the
	// global model is quiet, so a clamped key must escalate.
	pkl2 := &PerKeyLevels{Cat: cat, GroupFn: func([]byte) int { return 5 }}
	pkl2.SetN(5)
	pkl2.Observe(Observation{ReadRate: 1, WriteInterval: 10, Latency: time.Millisecond,
		Groups: []GroupRates{contended, quiet}})
	if got := pkl2.ReadLevelFor([]byte("hot0")); got == wire.One {
		t.Fatal("out-of-range group did not clamp to (contended) group 0")
	}
	// Without per-group telemetry the global model still rules.
	pkl2.Observe(Observation{ReadRate: 300, WriteInterval: 0.005, Latency: time.Millisecond})
	if got := pkl2.ReadLevelFor([]byte("hot0")); got == wire.One {
		t.Fatal("no-telemetry observation did not fall back to the global model")
	}
}

func TestAdvisorEndpoints(t *testing.T) {
	crit := Advisor{Profile: AppProfile{CriticalReads: true, StaleCost: 1, LatencyCostPerMs: 100}}
	if got, _ := crit.Recommend(); got != 0 {
		t.Fatalf("critical = %v, want 0", got)
	}
	arch := Advisor{Profile: AppProfile{ArchivalReads: true}}
	if got, _ := arch.Recommend(); got != 1 {
		t.Fatalf("archival = %v, want 1", got)
	}
	if _, err := (Advisor{Profile: AppProfile{StaleCost: -1}}).Recommend(); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestAdvisorCostBalance(t *testing.T) {
	// Equal costs: indifferent -> 0.5.
	a := Advisor{Profile: AppProfile{StaleCost: 1, LatencyCostPerMs: 1}, FreshnessLatencyMs: 1}
	got, err := a.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.45 || got > 0.55 {
		t.Fatalf("balanced = %v, want ~0.5", got)
	}
	// Stale reads 100x costlier than latency: tolerance near 0.
	shop := Advisor{Profile: AppProfile{StaleCost: 100, LatencyCostPerMs: 1}, FreshnessLatencyMs: 1}
	if got, _ = shop.Recommend(); got > 0.1 {
		t.Fatalf("webshop tolerance = %v, want near 0", got)
	}
	// Latency 100x costlier: tolerance near 1.
	feed := Advisor{Profile: AppProfile{StaleCost: 1, LatencyCostPerMs: 10}, FreshnessLatencyMs: 10}
	if got, _ = feed.Recommend(); got < 0.9 {
		t.Fatalf("feed tolerance = %v, want near 1", got)
	}
}

func TestAdvisorMonotoneInStaleCost(t *testing.T) {
	prev := 2.0
	for _, staleCost := range []float64{0.01, 0.1, 1, 10, 100} {
		a := Advisor{Profile: AppProfile{StaleCost: staleCost, LatencyCostPerMs: 1}, FreshnessLatencyMs: 2}
		got, err := a.Recommend()
		if err != nil {
			t.Fatal(err)
		}
		if got > prev {
			t.Fatalf("tolerance rose from %v to %v as stale cost grew", prev, got)
		}
		prev = got
	}
}

func TestAdvisorLadder(t *testing.T) {
	a := Advisor{Profile: AppProfile{StaleCost: 1, LatencyCostPerMs: 1}, FreshnessLatencyMs: 1}
	got, err := a.RecommendLadder()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("ladder = %v, want 0.5", got)
	}
	crit := Advisor{Profile: AppProfile{CriticalReads: true}}
	if got, _ := crit.RecommendLadder(); got != 0 {
		t.Fatalf("critical ladder = %v", got)
	}
}

func TestAdvisorZeroCosts(t *testing.T) {
	a := Advisor{Profile: AppProfile{}}
	got, err := a.Recommend()
	if err != nil || got != 0.5 {
		t.Fatalf("zero-cost recommendation = %v err=%v, want the paper's average", got, err)
	}
}

// TestWeightedKMeansSeparatesHotPopulationsUnderHeavyTail is the
// sampler-weighted clustering property: with a heavy tail of cold keys
// whose scattered features would otherwise soak up centroids, the two
// small-but-heavy hot populations must still land in distinct categories
// (they carry the traffic the categories exist to protect), and the
// write-contended one must get the tightest tolerance.
func TestWeightedKMeansSeparatesHotPopulationsUnderHeavyTail(t *testing.T) {
	ks := NewKeyStats(1)
	// 400 tail keys, ~unit weight, read-mostly features scattered across
	// the low end (write share <= ~0.2, far from the hot populations').
	for i := 0; i < 400; i++ {
		reads := 0.5 + float64(i%7)*0.25
		writes := float64(i%5) * 0.04
		ks.Add([]byte(fmt.Sprintf("tail%04d", i)), reads, writes)
	}
	// Population A: few keys, write-contended, heavy.
	for i := 0; i < 8; i++ {
		ks.Add([]byte(fmt.Sprintf("hotA%02d", i)), 2000, 2000)
	}
	// Population B: few keys, read-mostly but still heavy.
	for i := 0; i < 8; i++ {
		ks.Add([]byte(fmt.Sprintf("hotB%02d", i)), 4500, 500)
	}
	cat, err := NewCategorizer(3, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Recluster(ks, 0.01, 0.5); err != nil {
		t.Fatal(err)
	}
	assign := cat.Assignment()
	groupOf := func(prefix string, n int) map[int]int {
		out := map[int]int{}
		for i := 0; i < n; i++ {
			out[assign[fmt.Sprintf("%s%02d", prefix, i)]]++
		}
		return out
	}
	aGroups, bGroups := groupOf("hotA", 8), groupOf("hotB", 8)
	if len(aGroups) != 1 || len(bGroups) != 1 {
		t.Fatalf("hot populations fragmented: A=%v B=%v", aGroups, bGroups)
	}
	var aG, bG int
	for g := range aGroups {
		aG = g
	}
	for g := range bGroups {
		bG = g
	}
	if aG == bG {
		t.Fatalf("heavy populations A and B merged into category %d: tail outvoted the traffic", aG)
	}
	// A is the most write-contended population, so canonical contention
	// order must give it category 0, the tightest tolerance.
	if aG != 0 {
		t.Fatalf("write-contended heavy population got category %d, want 0 (tightest)", aG)
	}
	cats := cat.Categories()
	if cats[aG].Tolerance >= cats[bG].Tolerance {
		t.Fatalf("contended category tolerance %.3f not tighter than read-mostly %.3f",
			cats[aG].Tolerance, cats[bG].Tolerance)
	}
	// No tail key may ride in the contended category: that would force
	// quorum reads onto cold data.
	for key, g := range assign {
		if g == aG && len(key) > 4 && key[:4] == "tail" {
			t.Fatalf("tail key %s assigned to the contended category", key)
		}
	}
}

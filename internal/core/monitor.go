package core

import (
	"sort"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// Observation is one completed monitoring round: the cluster-wide read and
// write arrival rates over the window and the current network latency
// estimate.
type Observation struct {
	At time.Time
	// ReadRate is the read arrival rate λr (reads/second). By default it
	// is the per-node average (see MonitorConfig.AggregateRates).
	ReadRate float64
	// WriteInterval is the mean time between writes λw (seconds) — the
	// paper's exponential parameter for the write process — at the same
	// scope as ReadRate.
	WriteInterval float64
	// Latency is the current one-way network latency estimate Ln: the
	// expected one-way latency to the slowest member of a random
	// replica-set-sized subset of peers (an update has propagated only
	// once the slowest replica of the key holds it). When the monitor has
	// no replica-set size configured this degrades to half the maximum
	// observed round-trip.
	Latency time.Duration
	// MeanLatency is the average one-way latency across peers.
	MeanLatency time.Duration
	// AvgWriteBytes is the measured mean write payload over the window —
	// the avgw input of the paper's Tp(Ln, avgw). Zero when no writes
	// were observed.
	AvgWriteBytes float64
	// Divergence is the anti-entropy divergence gauge over the window:
	// age-seconds of stale data repair sessions healed, per second, at the
	// same scope as ReadRate (per-node average by default). Zero on a
	// converged cluster; positive while repair is still discovering rows a
	// recovering replica missed — i.e. while reads can hit data the
	// propagation-time staleness model knows nothing about.
	Divergence float64
	// Window is the effective measurement window after subtracting the
	// collection time, mirroring the paper's monitoring module which
	// "measures the monitoring time and takes it into account".
	Window time.Duration
	// Nodes is how many nodes reported stats this round.
	Nodes int
	// Members is the cluster membership size the monitor polls.
	Members int
	// AliveMembers is the best liveness view any reporting node holds: the
	// MAX of per-node failure-detector alive counts this round. The max —
	// not the min or mean — because under a partition each side reports
	// only what it can reach, and the best-connected member approximates
	// the main component the controller's commands must be servable in;
	// letting a cut-off minority's view of 1 drag the estimate down would
	// needlessly degrade consistency for the majority. Zero when no node
	// reports a liveness count (no detector wired), which disables the
	// controller's availability clamp.
	AliveMembers int
	// Groups carries per-key-group arrival rates, indexed by group id,
	// when the polled nodes report per-group counters. Rates use the same
	// scope (per-node average vs cluster total) as ReadRate/WriteInterval,
	// and the groups partition the aggregate traffic. Empty when the
	// cluster runs the classic single-group pipeline, and empty for the
	// transition rounds around a grouping-epoch change: per-group counters
	// re-baseline on regroup, so deltas spanning two epochs are discarded
	// rather than reported.
	Groups []GroupRates
	// Epoch is the grouping epoch the per-group rates belong to (zero for
	// clusters that never regroup). Consumers adapting per-group state must
	// ignore Groups whose epoch does not match their own group table.
	Epoch uint64
}

// GroupRates is one key group's measured arrival process over a window.
type GroupRates struct {
	// ReadRate is the group's read arrival rate λr (reads/second).
	ReadRate float64
	// WriteInterval is the group's mean time between writes λw (seconds);
	// zero when the group saw no writes in the window.
	WriteInterval float64
	// AvgWriteBytes is the group's measured mean write payload over the
	// window — groups with different payload sizes get distinct Tp
	// estimates. Zero when the group saw no writes.
	AvgWriteBytes float64
	// Divergence is the group's share of the anti-entropy divergence gauge
	// (see Observation.Divergence), so the controller tightens exactly the
	// groups whose data a recovering replica serves stale.
	Divergence float64
}

// MonitorConfig configures the monitoring module.
type MonitorConfig struct {
	// ID is the monitor's endpoint identity on the fabric.
	ID ring.NodeID
	// Nodes are the storage nodes to poll.
	Nodes []ring.NodeID
	// Interval between monitoring rounds; zero means 1s.
	Interval time.Duration
	// RoundTimeout bounds one collection round; zero means Interval/2.
	RoundTimeout time.Duration
	// AggregateRates reports cluster-wide total arrival rates instead of
	// the default per-node averages. The estimation model's λr and λw
	// describe the arrival process contending on one replica set; the
	// per-node average is the faithful proxy for that at cluster scale
	// (cluster-wide totals saturate the estimate at trivial load).
	AggregateRates bool
	// ReplicaSetSize, when positive, makes the latency estimate the
	// expected slowest one-way latency over a random subset of this many
	// peers — the replication factor, since an update has propagated only
	// when the slowest replica of its key holds it. Zero uses the maximum
	// across all peers.
	ReplicaSetSize int
	// OnObservation receives each completed round.
	OnObservation func(Observation)
	// OnNodeStats receives every node's raw stats response as a round
	// closes, before rates are derived — the tap the regrouping subsystem
	// uses to collect per-node key samples without a second poll loop.
	OnNodeStats func(node ring.NodeID, s wire.StatsResponse)
}

// Monitor polls every storage node for its operation counters (the paper
// used Cassandra's nodetool) and round-trip latency (the paper used ping),
// aggregates the responses, and derives the arrival-rate inputs of the
// estimation model. Requests to all nodes go out concurrently — the fabric
// is asynchronous — matching the multithreaded collection the paper
// describes; the round closes when every node answered or the timeout
// fires.
type Monitor struct {
	cfg  MonitorConfig
	rt   sim.Runtime
	send transport.Sender

	stop     func()
	seq      uint64
	round    *roundState
	lastAt   time.Time
	havePrev bool
	rounds   uint64
	// prev holds each node's last reported counters and prevAt the round it
	// reported them. Deltas are computed PER NODE and then summed, and a
	// node only contributes when its baseline is from the immediately
	// preceding round: a node missing a round (outage, lost frame) neither
	// drags the summed baseline negative nor, on return, counts its whole
	// absence backlog as one window's traffic — its first report back only
	// re-establishes its baseline. Per-group deltas additionally require
	// the node's baseline epoch to match its current one: group counters
	// re-baseline on a GroupUpdate, and cross-epoch samples must never mix.
	prev   map[ring.NodeID]wire.StatsResponse
	prevAt map[ring.NodeID]uint64
}

type roundState struct {
	id        uint64
	started   time.Time
	stats     map[ring.NodeID]wire.StatsResponse
	rtts      map[ring.NodeID]time.Duration
	pingSent  map[uint64]ring.NodeID
	statsSent map[uint64]ring.NodeID
	expires   func()
	done      bool
}

// NewMonitor creates a monitor; Start begins polling. Register the monitor
// on the fabric under cfg.ID before starting.
func NewMonitor(cfg MonitorConfig, rt sim.Runtime, send transport.Sender) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = cfg.Interval / 2
	}
	return &Monitor{
		cfg:    cfg,
		rt:     rt,
		send:   send,
		prev:   make(map[ring.NodeID]wire.StatsResponse),
		prevAt: make(map[ring.NodeID]uint64),
	}
}

// Start begins periodic collection.
func (m *Monitor) Start() {
	if m.stop != nil {
		return
	}
	// sim.Every's stop is safe to call from any goroutine — real-runtime
	// deployments stop the monitor from outside its mailbox goroutine.
	m.stop = sim.Every(m.rt, func() time.Duration { return m.cfg.Interval }, m.beginRound)
}

// Stop halts collection.
func (m *Monitor) Stop() {
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
}

// Rounds reports completed collection rounds.
func (m *Monitor) Rounds() uint64 { return m.rounds }

func (m *Monitor) beginRound() {
	if m.round != nil && !m.round.done {
		m.closeRound() // straggling previous round: close with what we have
	}
	r := &roundState{
		started:   m.rt.Now(),
		stats:     make(map[ring.NodeID]wire.StatsResponse),
		rtts:      make(map[ring.NodeID]time.Duration),
		pingSent:  make(map[uint64]ring.NodeID),
		statsSent: make(map[uint64]ring.NodeID),
	}
	m.round = r
	for _, n := range m.cfg.Nodes {
		m.seq++
		r.statsSent[m.seq] = n
		m.send.Send(m.cfg.ID, n, wire.StatsRequest{ID: m.seq})
		m.seq++
		r.pingSent[m.seq] = n
		m.send.Send(m.cfg.ID, n, wire.Ping{ID: m.seq, Sent: m.rt.Now().UnixNano()})
	}
	r.expires = m.rt.After(m.cfg.RoundTimeout, func() {
		if m.round == r && !r.done {
			m.closeRound()
		}
	})
}

// Deliver implements transport.Handler for stats and pong responses.
func (m *Monitor) Deliver(from ring.NodeID, msg wire.Message) {
	r := m.round
	if r == nil || r.done {
		return
	}
	switch v := msg.(type) {
	case wire.StatsResponse:
		if want, ok := r.statsSent[v.ID]; ok && want == from {
			r.stats[from] = v
		}
	case wire.Pong:
		if want, ok := r.pingSent[v.ID]; ok && want == from {
			r.rtts[from] = time.Duration(m.rt.Now().UnixNano() - v.Sent)
		}
	}
	if len(r.stats) == len(m.cfg.Nodes) && len(r.rtts) == len(m.cfg.Nodes) {
		m.closeRound()
	}
}

func (m *Monitor) closeRound() {
	r := m.round
	if r == nil || r.done {
		return
	}
	r.done = true
	if r.expires != nil {
		r.expires()
	}
	now := m.rt.Now()
	collectionTime := now.Sub(r.started)

	if m.cfg.OnNodeStats != nil {
		for _, n := range m.cfg.Nodes {
			if s, ok := r.stats[n]; ok {
				m.cfg.OnNodeStats(n, s)
			}
		}
	}

	// Per-node deltas (see Monitor.prev): a node only contributes once it
	// has a baseline, and its per-group counters only while its baseline
	// and current report belong to the same grouping epoch.
	var dReads, dWrites, dBytesW, dRepAge uint64
	current := func(node ring.NodeID) bool { return m.prevAt[node] == m.rounds }
	for node, s := range r.stats {
		p, ok := m.prev[node]
		if !ok || !current(node) {
			continue // first report, or a gap: re-establishes the baseline
		}
		dReads += counterDelta(s.Reads, p.Reads)
		dWrites += counterDelta(s.Writes, p.Writes)
		dBytesW += counterDelta(s.BytesWrit, p.BytesWrit)
		dRepAge += counterDelta(s.RepairAgeMs, p.RepairAgeMs)
	}
	// Per-group deltas only aggregate when every reporting node tallies
	// under the same grouping epoch; during a GroupUpdate rollout some
	// nodes still count the old groups, and mixing the two would attribute
	// one epoch's traffic to another epoch's groups.
	groupEpoch := uint64(0)
	epochAgreed := len(r.stats) > 0
	firstStat := true
	for _, s := range r.stats {
		if firstStat {
			groupEpoch, firstStat = s.Epoch, false
		} else if s.Epoch != groupEpoch {
			epochAgreed = false
		}
	}
	// Group rates stay all-or-nothing across an epoch change (the
	// Observation.Groups contract): every reporting node must hold a
	// same-epoch baseline, or the whole round's group rates are discarded
	// — partial sums during a rollout would systematically underreport a
	// group's traffic. A node merely absent this round (outage) does not
	// veto the others.
	var groupDeltas []wire.GroupCounters
	allBaselined, anyGroups := epochAgreed, false
	if epochAgreed {
		for node, s := range r.stats {
			p, ok := m.prev[node]
			if !ok || !current(node) || p.Epoch != s.Epoch {
				allBaselined = false // baseline missing, gapped, or cross-epoch
				continue
			}
			anyGroups = anyGroups || len(s.Groups) > 0
			for len(groupDeltas) < len(s.Groups) {
				groupDeltas = append(groupDeltas, wire.GroupCounters{})
			}
			for g, gc := range s.Groups {
				var pg wire.GroupCounters
				if g < len(p.Groups) {
					pg = p.Groups[g]
				}
				groupDeltas[g].Reads += counterDelta(gc.Reads, pg.Reads)
				groupDeltas[g].Writes += counterDelta(gc.Writes, pg.Writes)
				groupDeltas[g].BytesWritten += counterDelta(gc.BytesWritten, pg.BytesWritten)
				groupDeltas[g].RepairRows += counterDelta(gc.RepairRows, pg.RepairRows)
				groupDeltas[g].RepairAgeMs += counterDelta(gc.RepairAgeMs, pg.RepairAgeMs)
			}
		}
	}
	groupsComparable := epochAgreed && allBaselined && anyGroups
	var maxRTT, sumRTT time.Duration
	all := make([]time.Duration, 0, len(r.rtts))
	for _, rtt := range r.rtts {
		if rtt > maxRTT {
			maxRTT = rtt
		}
		sumRTT += rtt
		all = append(all, rtt)
	}
	var meanRTT time.Duration
	if len(r.rtts) > 0 {
		meanRTT = sumRTT / time.Duration(len(r.rtts))
	}
	ln := maxRTT / 2
	if rf := m.cfg.ReplicaSetSize; rf > 0 && len(all) > 0 {
		ln = expectedSubsetMax(all, rf) / 2
	}

	defer func() {
		m.rounds++
		for node, s := range r.stats {
			m.prev[node] = s
			m.prevAt[node] = m.rounds
		}
		m.lastAt = now
		m.havePrev = true
	}()

	if !m.havePrev {
		return // first round only establishes the baseline counters
	}
	// Effective window: time since the previous round's close, minus this
	// round's collection time (ops counted during collection bias the rate).
	window := now.Sub(m.lastAt) - collectionTime
	if window <= 0 {
		window = now.Sub(m.lastAt)
	}
	if window <= 0 || m.cfg.OnObservation == nil {
		return
	}
	scale := 1.0
	if !m.cfg.AggregateRates && len(m.cfg.Nodes) > 0 {
		scale = float64(len(m.cfg.Nodes))
	}
	obs := Observation{
		At:          now,
		ReadRate:    float64(dReads) / window.Seconds() / scale,
		Latency:     ln,
		MeanLatency: meanRTT / 2,
		Divergence:  float64(dRepAge) / 1000 / window.Seconds() / scale,
		Window:      window,
		Nodes:       len(r.stats),
		Members:     len(m.cfg.Nodes),
	}
	for _, s := range r.stats {
		if int(s.AliveMembers) > obs.AliveMembers {
			obs.AliveMembers = int(s.AliveMembers)
		}
	}
	if dWrites > 0 {
		obs.WriteInterval = window.Seconds() * scale / float64(dWrites)
		obs.AvgWriteBytes = float64(dBytesW) / float64(dWrites)
	}
	if groupsComparable && len(groupDeltas) > 0 {
		obs.Epoch = groupEpoch
		obs.Groups = make([]GroupRates, len(groupDeltas))
		for g, gd := range groupDeltas {
			gr := GroupRates{
				ReadRate:   float64(gd.Reads) / window.Seconds() / scale,
				Divergence: float64(gd.RepairAgeMs) / 1000 / window.Seconds() / scale,
			}
			if gd.Writes > 0 {
				gr.WriteInterval = window.Seconds() * scale / float64(gd.Writes)
				gr.AvgWriteBytes = float64(gd.BytesWritten) / float64(gd.Writes)
			}
			obs.Groups[g] = gr
		}
	}
	m.cfg.OnObservation(obs)
}

func counterDelta(cur, prev uint64) uint64 {
	if cur < prev {
		return 0 // counter reset (node restart)
	}
	return cur - prev
}

// expectedSubsetMax computes E[max of a uniformly random m-subset] of vals
// exactly via order statistics: with vals sorted ascending, the i-th value
// (0-based) is the subset maximum with probability C(i, m-1)/C(n, m).
func expectedSubsetMax(vals []time.Duration, m int) time.Duration {
	n := len(vals)
	if n == 0 {
		return 0
	}
	sorted := make([]time.Duration, n)
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if m >= n {
		return sorted[n-1]
	}
	if m <= 1 {
		// Mean: every element equally likely to be the "subset".
		var sum time.Duration
		for _, v := range sorted {
			sum += v
		}
		return sum / time.Duration(n)
	}
	// weight(i) = C(i, m-1)/C(n, m); build C(i, m-1) with a running product.
	total := 0.0
	expect := 0.0
	choose := func(a, b int) float64 {
		if b < 0 || b > a {
			return 0
		}
		out := 1.0
		for j := 0; j < b; j++ {
			out *= float64(a-j) / float64(b-j)
		}
		return out
	}
	cnm := choose(n, m)
	for i := m - 1; i < n; i++ {
		w := choose(i, m-1) / cnm
		total += w
		expect += w * float64(sorted[i])
	}
	if total <= 0 {
		return sorted[n-1]
	}
	return time.Duration(expect / total)
}

var _ transport.Handler = (*Monitor)(nil)

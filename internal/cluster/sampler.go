package cluster

import (
	"sort"

	"harmony/internal/wire"
)

// keySampler is the node-side half of the online regrouping loop: a decayed
// per-key tally of the reads and writes this node coordinates, exported as
// the top-weight samples on every stats poll. It deliberately mirrors
// core.KeyStats without depending on it (the core package's tests drive
// whole clusters, so cluster must stay import-free of core); the monitor
// side merges these samples back into a core.KeyStats for clustering.
//
// The sampler is only touched from the node's runtime, so it needs no lock.
type keySampler struct {
	decay float64
	max   int // tracked-key cap; exceeding it evicts the lightest keys
	keys  map[string]*sampleWeights
}

type sampleWeights struct {
	reads, writes float64
}

// newKeySampler tracks up to max keys (max <= 0 means 4096) with the given
// per-export decay (outside (0, 1] means 0.5).
func newKeySampler(decay float64, max int) *keySampler {
	if decay <= 0 || decay > 1 {
		decay = 0.5
	}
	if max <= 0 {
		max = 4096
	}
	return &keySampler{decay: decay, max: max, keys: make(map[string]*sampleWeights)}
}

func (ks *keySampler) observe(key []byte, r, w float64) {
	sw, ok := ks.keys[string(key)]
	if !ok {
		if len(ks.keys) >= ks.max {
			ks.evict()
		}
		sw = &sampleWeights{}
		ks.keys[string(key)] = sw
	}
	sw.reads += r
	sw.writes += w
}

// evict drops the lightest 25% of tracked keys (by rank, not by weight
// threshold: a near-uniform workload has most keys at the same weight, and
// deleting everything tied with the percentile cut would wipe the whole
// sample) so newly hot keys can enter even at the cap.
func (ks *keySampler) evict() {
	type kw struct {
		k string
		w float64
	}
	all := make([]kw, 0, len(ks.keys))
	for k, sw := range ks.keys {
		all = append(all, kw{k: k, w: sw.reads + sw.writes})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w < all[j].w
		}
		return all[i].k < all[j].k
	})
	n := len(all) / 4
	if n < 1 {
		n = 1
	}
	for _, e := range all[:n] {
		delete(ks.keys, e.k)
	}
}

// export returns the top keys by decayed weight, then ages every weight so
// keys that stop being accessed fade out within a few polls.
func (ks *keySampler) export(limit int) []wire.KeySample {
	out := make([]wire.KeySample, 0, len(ks.keys))
	for k, sw := range ks.keys {
		out = append(out, wire.KeySample{Key: []byte(k), Reads: sw.reads, Writes: sw.writes})
	}
	sort.Slice(out, func(i, j int) bool {
		wi, wj := out[i].Reads+out[i].Writes, out[j].Reads+out[j].Writes
		if wi != wj {
			return wi > wj
		}
		return string(out[i].Key) < string(out[j].Key)
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	for k, sw := range ks.keys {
		sw.reads *= ks.decay
		sw.writes *= ks.decay
		if sw.reads+sw.writes < 0.01 {
			delete(ks.keys, k)
		}
	}
	return out
}

package server

import (
	"strconv"

	"harmony/internal/cluster"
	"harmony/internal/obs"
	"harmony/internal/storage"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// GroupStatus is one key group's slice of the /status document: its traffic
// split, the consistency levels that traffic actually ran at, and the
// shadow-sampled staleness estimate for the current grouping epoch.
type GroupStatus struct {
	Group  int    `json:"group"`
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	// Level is the consistency level the plurality of the group's
	// coordinated traffic was served at this epoch ("" before any traffic).
	Level string `json:"level,omitempty"`
	// LevelUse tallies coordinated operations per consistency level.
	LevelUse map[string]uint64 `json:"level_use,omitempty"`
	// StaleRate is the shadow-sampled stale-read fraction (the §V-F dual
	// read probe): ShadowStale/ShadowSamples, 0 with no samples.
	StaleRate     float64 `json:"stale_rate"`
	ShadowSamples uint64  `json:"shadow_samples"`
}

// Status is the /status document: one JSON snapshot of the node's live
// state across every subsystem. It is assembled per request.
type Status struct {
	Node           string               `json:"node"`
	Addr           string               `json:"addr"`
	GroupEpoch     uint64               `json:"group_epoch"`
	HintQueueDepth int                  `json:"hint_queue_depth"`
	RepairSessions int                  `json:"repair_active_sessions"`
	Groups         []GroupStatus        `json:"groups"`
	Metrics        cluster.Metrics      `json:"metrics"`
	Storage        storage.Stats        `json:"storage"`
	Transport      transport.TCPStats   `json:"transport"`
	Peers          []transport.PeerStat `json:"peers"`
}

// status assembles the /status document from live subsystem snapshots.
func (s *Server) status() Status {
	m := s.node.Snapshot()
	st := Status{
		Node:           string(s.cfg.ID),
		GroupEpoch:     m.GroupEpoch,
		HintQueueDepth: s.node.HintDepth(),
		Groups:         groupStatuses(m),
		Metrics:        m,
		Storage:        s.node.Engine().Stats(),
		Transport:      s.tcp.Stats(),
		Peers:          s.tcp.PeerStats(),
	}
	if a := s.tcp.Addr(); a != nil {
		st.Addr = a.String()
	}
	if rm := s.node.RepairManager(); rm != nil {
		st.RepairSessions = rm.ActiveSessions()
	}
	return st
}

// groupStatuses derives the per-group view from one metrics snapshot.
func groupStatuses(m cluster.Metrics) []GroupStatus {
	out := make([]GroupStatus, 0, len(m.GroupReads))
	for g := range m.GroupReads {
		gs := GroupStatus{Group: g, Reads: m.GroupReads[g]}
		if g < len(m.GroupWrites) {
			gs.Writes = m.GroupWrites[g]
		}
		if g < len(m.GroupShadowSamples) {
			gs.ShadowSamples = m.GroupShadowSamples[g]
			if gs.ShadowSamples > 0 && g < len(m.GroupShadowStale) {
				gs.StaleRate = float64(m.GroupShadowStale[g]) / float64(gs.ShadowSamples)
			}
		}
		if g < len(m.GroupLevelUse) {
			var best uint64
			for l, n := range m.GroupLevelUse[g] {
				if n == 0 {
					continue
				}
				if gs.LevelUse == nil {
					gs.LevelUse = make(map[string]uint64)
				}
				name := wire.ConsistencyLevel(l).String()
				gs.LevelUse[name] = n
				if n > best {
					best, gs.Level = n, name
				}
			}
		}
		out = append(out, gs)
	}
	return out
}

// buildRegistry assembles the node's metric collectors: cluster counters,
// per-group tallies, storage gauges, transport counters with per-peer queue
// depth, repair gauges, and the op×level latency summaries. Every series
// carries a node label so multi-node scrapes merge cleanly.
func (s *Server) buildRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	base := []obs.Label{{Name: "node", Value: string(s.cfg.ID)}}
	reg.Register(s.clusterCollector(base))
	reg.Register(s.storageCollector(base))
	reg.Register(s.transportCollector(base))
	reg.Register(obs.OpLatencyCollector(s.opHist, base...))
	return reg
}

func sample(emit func(obs.Metric), t obs.MetricType, name, help string, labels []obs.Label, v float64) {
	emit(obs.Metric{Name: name, Help: help, Type: t, Labels: labels, Value: v})
}

// withLabel copies base and appends extra labels (collectors must not share
// a mutated backing array between emitted series).
func withLabel(base []obs.Label, extra ...obs.Label) []obs.Label {
	out := make([]obs.Label, 0, len(base)+len(extra))
	out = append(out, base...)
	return append(out, extra...)
}

func (s *Server) clusterCollector(base []obs.Label) obs.Collector {
	return func(emit func(obs.Metric)) {
		m := s.node.Snapshot()
		c := func(name, help string, v uint64) { sample(emit, obs.Counter, name, help, base, float64(v)) }
		c("harmony_reads_total", "Client reads coordinated.", m.Reads)
		c("harmony_writes_total", "Client writes coordinated.", m.Writes)
		c("harmony_replica_ops_total", "Replica-level reads and mutations served.", m.ReplicaOps)
		c("harmony_bytes_read_total", "Payload bytes returned to clients.", m.BytesRead)
		c("harmony_bytes_written_total", "Payload bytes written by clients.", m.BytesWritten)
		c("harmony_repairs_sent_total", "Read-repair mutations sent.", m.RepairsSent)
		c("harmony_hints_queued_total", "Hints queued for down replicas.", m.HintsQueued)
		c("harmony_hints_replayed_total", "Hints replayed to recovered replicas.", m.HintsReplayed)
		c("harmony_hints_dropped_total", "Hints lost to overflow or coordinator crash.", m.HintsDropped)
		c("harmony_read_timeouts_total", "Coordinated reads that timed out.", m.ReadTimeouts)
		c("harmony_write_timeouts_total", "Coordinated writes that timed out.", m.WriteTimeouts)
		c("harmony_unavailable_total", "Operations failed fast for lack of live replicas.", m.Unavailable)
		c("harmony_overloaded_total", "Operations shed at the coordinator's in-flight bound.", m.Overloaded)
		c("harmony_repair_rows_total", "Rows anti-entropy healed on this node.", m.RepairRows)
		c("harmony_shadow_samples_total", "Reads carrying the dual-read staleness probe.", m.ShadowSamples)
		c("harmony_shadow_stale_total", "Shadow probes that observed a stale value.", m.ShadowStale)
		c("harmony_session_upgrades_total", "SESSION reads that fanned out for token coverage.", m.SessionUpgrades)
		sample(emit, obs.Gauge, "harmony_hint_queue_depth",
			"Hints currently queued for down replicas.", base, float64(s.node.HintDepth()))
		sample(emit, obs.Gauge, "harmony_group_epoch",
			"Grouping epoch the node's counters belong to.", base, float64(m.GroupEpoch))
		if rm := s.node.RepairManager(); rm != nil {
			sample(emit, obs.Gauge, "harmony_repair_active_sessions",
				"Anti-entropy repair sessions in flight.", base, float64(rm.ActiveSessions()))
		}
		for g := range m.GroupReads {
			gl := withLabel(base, obs.Label{Name: "group", Value: strconv.Itoa(g)})
			sample(emit, obs.Counter, "harmony_group_reads_total",
				"Coordinated reads per key group (since the current epoch).", gl, float64(m.GroupReads[g]))
			if g < len(m.GroupWrites) {
				sample(emit, obs.Counter, "harmony_group_writes_total",
					"Coordinated writes per key group (since the current epoch).", gl, float64(m.GroupWrites[g]))
			}
			if g >= len(m.GroupLevelUse) {
				continue
			}
			for l, n := range m.GroupLevelUse[g] {
				if n == 0 {
					continue
				}
				sample(emit, obs.Counter, "harmony_group_level_use_total",
					"Coordinated operations per key group and consistency level.",
					withLabel(gl, obs.Label{Name: "level", Value: wire.ConsistencyLevel(l).String()}),
					float64(n))
			}
		}
	}
}

func (s *Server) storageCollector(base []obs.Label) obs.Collector {
	return func(emit func(obs.Metric)) {
		st := s.node.Engine().Stats()
		g := func(name, help string, v float64) { sample(emit, obs.Gauge, name, help, base, v) }
		c := func(name, help string, v uint64) { sample(emit, obs.Counter, name, help, base, float64(v)) }
		g("harmony_storage_live_keys", "Distinct keys resident across shards.", float64(st.LiveKeys))
		g("harmony_storage_keydir_bytes", "Estimated resident bytes of the persistent keydirs.", float64(st.KeydirBytes))
		g("harmony_storage_disk_segments", "Data files on disk across shards.", float64(st.DiskSegments))
		g("harmony_storage_disk_bytes", "Total log bytes on disk.", float64(st.DiskBytes))
		g("harmony_storage_disk_dead_bytes", "Disk bytes owned by overwritten records.", float64(st.DiskDeadBytes))
		g("harmony_storage_memtable_bytes", "Resident memtable bytes.", float64(st.MemtableBytes))
		c("harmony_storage_writes_total", "Engine apply operations.", st.Writes)
		c("harmony_storage_reads_total", "Engine read operations.", st.Reads)
		c("harmony_storage_compactions_total", "Segment compactions completed.", st.Compactions)
		c("harmony_storage_siblings_total", "Applies that arbitrated causally concurrent versions.", st.Siblings)
		c("harmony_storage_fsyncs_total", "Fsync calls issued by group-commit rounds.", st.Fsyncs)
		c("harmony_storage_fsync_batched_ops_total", "Appends covered by those fsync rounds.", st.FsyncBatchedOps)
	}
}

func (s *Server) transportCollector(base []obs.Label) obs.Collector {
	return func(emit func(obs.Metric)) {
		st := s.tcp.Stats()
		c := func(name, help string, v uint64) { sample(emit, obs.Counter, name, help, base, float64(v)) }
		c("harmony_transport_frames_sent_total", "Frames handed to the kernel.", st.FramesSent)
		c("harmony_transport_frames_dropped_total", "Frames dropped (dead peer, backpressure).", st.FramesDropped)
		c("harmony_transport_frames_received_total", "Frames received.", st.FramesReceived)
		c("harmony_transport_bytes_sent_total", "Wire bytes sent.", st.BytesSent)
		c("harmony_transport_batches_total", "Coalesced write batches flushed.", st.Batches)
		c("harmony_transport_dials_total", "Successful peer dials.", st.Dials)
		c("harmony_transport_dial_failures_total", "Failed peer dial attempts.", st.DialFailures)
		for _, p := range s.tcp.PeerStats() {
			pl := withLabel(base, obs.Label{Name: "peer", Value: string(p.Peer)})
			sample(emit, obs.Gauge, "harmony_transport_peer_queue_bytes",
				"Send-queue bytes pending toward the peer.", pl, float64(p.PendingBytes))
			sample(emit, obs.Gauge, "harmony_transport_peer_streams",
				"Live pooled connections to the peer.", pl, float64(p.Streams))
			sample(emit, obs.Counter, "harmony_transport_peer_dials_total",
				"Successful dials to the peer.", pl, float64(p.Dials))
		}
	}
}

package bench

import (
	"fmt"
	"strings"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/sim"
	"harmony/internal/ycsb"
)

// The lag experiment quantifies re-adaptation speed (a ROADMAP follow-up):
// on the drifting scenario the network decays mid-run from healthy to
// degraded, and a core.LagMeter chained into the controller's decision
// stream records the time from the regime change until the decision level
// settles on its new stable value. That number is what one tunes monitor
// cadence against — a controller that takes ten seconds to notice a
// five-second drift is adapting to history.

// LagResult is one measured re-adaptation lag.
type LagResult struct {
	Scenario  string  `json:"scenario"`
	Policy    string  `json:"policy"`
	Tolerance float64 `json:"tolerance"`
	// RegimeChangeAtMs / RegimeStableByMs anchor the environment's own
	// timeline (virtual ms from load start).
	RegimeChangeAtMs float64 `json:"regime_change_at_ms"`
	RegimeStableByMs float64 `json:"regime_stable_by_ms"`
	// LagMs is the measured time from the regime change to the first
	// decision at the new regime's operating level (the modal level of the
	// trailing decision window — see core.LagMeter); Stable reports
	// whether enough post-change decisions accumulated to judge it.
	LagMs  float64 `json:"lag_ms"`
	Stable bool    `json:"stable"`
	// PreLevel / PostLevel are the stable levels before and after.
	PreLevel  string `json:"pre_level"`
	PostLevel string `json:"post_level"`
	// Decisions is how many controller decisions the run produced.
	Decisions int `json:"decisions"`
}

// Format renders the measurement.
func (r LagResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== re-adaptation lag (%s, %s) ==\n", r.Scenario, r.Policy)
	fmt.Fprintf(&b, "regime change at %.0fms, environment settled by %.0fms\n",
		r.RegimeChangeAtMs, r.RegimeStableByMs)
	if r.Stable {
		fmt.Fprintf(&b, "controller: %s -> %s, new operating level reached %.0fms after the change began\n",
			r.PreLevel, r.PostLevel, r.LagMs)
	} else {
		fmt.Fprintf(&b, "controller: %s -> (not enough post-change decisions to judge)\n", r.PreLevel)
	}
	return b.String()
}

// AdaptationLag runs the given regime-change scenario under Harmony at the
// scenario's tighter tolerance and measures time-from-regime-change-to-
// stable-level. The scenario must declare RegimeChangeAt (the drifting
// scenario does).
func AdaptationLag(sc Scenario, opts Options) (LagResult, error) {
	opts = opts.withDefaults()
	if sc.RegimeChangeAt <= 0 {
		return LagResult{}, fmt.Errorf("bench: scenario %q has no declared regime change", sc.Name)
	}
	s := sim.New(opts.Seed)
	c, err := cluster.BuildSim(s, sc.Spec)
	if err != nil {
		return LagResult{}, err
	}
	if sc.Prepare != nil {
		if stop := sc.Prepare(s, c); stop != nil {
			defer stop()
		}
	}
	// The tolerance sits between the healthy regime's stale-read estimate
	// and the degraded regime's, so the drift demands a level change the
	// meter can time (a tolerance far from both estimates would make the
	// regime change consistency-invisible). It is biased toward the loose
	// preset: on the drifting testbed the healthy estimate hugs the tight
	// preset from above, and a plain midpoint sits inside the healthy
	// noise band.
	tol := 0.4*sc.HarmonyTolerances[0] + 0.6*sc.HarmonyTolerances[1]
	meter := &core.LagMeter{Window: 8}
	decisions := 0
	ctl := core.NewController(core.ControllerConfig{
		Policy:               core.Policy{Name: fmt.Sprintf("Harmony-%d%%", int(tol*100+0.5)), ToleratedStaleRate: tol},
		N:                    sc.Spec.RF,
		AvgWriteBytes:        1024,
		BandwidthBytesPerSec: sc.Spec.Profile.BandwidthBytesPerSec,
		OnDecision: func(d core.Decision) {
			decisions++
			meter.OnDecision(d)
		},
	})
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "harmony-monitor",
		Nodes:          c.NodeIDs(),
		Interval:       sc.MonitorInterval,
		ReplicaSetSize: sc.Spec.RF,
		OnObservation:  ctl.Observe,
	}, s, c.Bus)
	c.Net.Colocate("harmony-monitor", c.NodeIDs()[0])
	c.Bus.Register("harmony-monitor", s, mon)

	wl := ycsb.WorkloadA()
	wl.RecordCount = 20_000
	runner, err := ycsb.NewRunner(ycsb.RunConfig{
		Workload:    wl,
		Threads:     40,
		ShadowEvery: 5,
		Seed:        opts.Seed,
		ArrivalRate: opts.ArrivalRate,
	}, s, c)
	if err != nil {
		return LagResult{}, err
	}
	runner.Load()
	mon.Start()
	runner.Start()

	// Run to the regime change, mark it, then run until well past the
	// environment's own settling point so the controller can stabilize.
	s.RunFor(sc.RegimeChangeAt)
	meter.MarkRegimeChange(s.Now())
	preLevel := meter.PreLevel()
	settle := sc.RegimeStableBy - sc.RegimeChangeAt + 6*time.Second
	s.RunFor(settle)
	runner.Stop()
	mon.Stop()
	runner.Drain()

	lag, stable := meter.Lag()
	res := LagResult{
		Scenario:         sc.Name,
		Policy:           ctl.Policy().Name,
		Tolerance:        tol,
		RegimeChangeAtMs: durMs(sc.RegimeChangeAt),
		RegimeStableByMs: durMs(sc.RegimeStableBy),
		LagMs:            durMs(lag),
		Stable:           stable,
		PreLevel:         preLevel.String(),
		PostLevel:        meter.StableLevel().String(),
		Decisions:        decisions,
	}
	opts.progress("lag %s: %s -> %s in %.0fms (stable=%v)",
		sc.Name, res.PreLevel, res.PostLevel, res.LagMs, res.Stable)
	return res, nil
}

func durMs(d time.Duration) float64 { return float64(d) / 1e6 }

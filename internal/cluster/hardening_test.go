package cluster

import (
	"errors"
	"testing"
	"time"

	"harmony/internal/client"
	"harmony/internal/faults"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

// TestTsHintReplayCollapses drives the full idempotent-retry loop through
// the fault injector: the first coordinator's ack to the client is dropped,
// the client retries the write — same TsHint, next coordinator — and the
// replayed mutation LWW-collapses into the already-applied one. The client
// sees success and a strong read returns exactly the stamped version.
func TestTsHintReplayCollapses(t *testing.T) {
	s := sim.New(42)
	c, err := BuildSim(s, DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	reps := ring.ReplicasForKey(c.Ring, c.Strategy, []byte("idem"))
	drv, err := client.New(client.Options{
		ID:           "cl",
		Coordinators: []ring.NodeID{reps[0], reps[1]},
		Policy:       client.Fixed{Write: wire.Quorum},
		Timeout:      2 * time.Second,
		MaxAttempts:  2, AttemptTimeout: 300 * time.Millisecond,
		RetryBackoff: time.Millisecond, RetryBackoffMax: 4 * time.Millisecond,
	}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("cl", s, drv)

	// Drop the first coordinator's responses to the client: the write
	// applies but its ack is lost, forcing a replay.
	c.Faults.SetRule(string(reps[0]), "cl", faults.Rule{Drop: 1})

	var res client.WriteResult
	done := false
	drv.Write([]byte("idem"), []byte("v1"), func(r client.WriteResult) { res = r; done = true })
	s.RunFor(5 * time.Second)
	if !done || res.Err != nil {
		t.Fatalf("write done=%v res=%+v", done, res)
	}
	if drv.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", drv.Retries())
	}
	if st := c.Faults.Stats(); st.Dropped == 0 {
		t.Fatalf("injector dropped nothing: %+v", st)
	}

	c.Faults.Clear()
	var got client.ReadResult
	done = false
	drv.ReadAt([]byte("idem"), wire.All, func(r client.ReadResult) { got = r; done = true })
	s.RunFor(5 * time.Second)
	if !done || got.Err != nil || !got.Found || string(got.Value) != "v1" {
		t.Fatalf("strong read = %+v done=%v", got, done)
	}
	if got.Ts != res.Ts {
		t.Fatalf("replayed write forked versions: read ts=%d write ts=%d", got.Ts, res.Ts)
	}
}

// TestOverloadSheddingAtMaxInFlight pins the coordinator's in-flight bound:
// a burst beyond MaxInFlight is shed fail-fast with wire.ErrOverloaded
// (client.ErrOverloaded on the client), counted in Metrics.Overloaded, while
// work inside the bound still succeeds.
func TestOverloadSheddingAtMaxInFlight(t *testing.T) {
	spec := DefaultSpec()
	spec.MaxInFlight = 1
	s := sim.New(7)
	c, err := BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	reps := ring.ReplicasForKey(c.Ring, c.Strategy, []byte("hot"))
	drv, err := client.New(client.Options{
		ID: "cl", Coordinators: []ring.NodeID{reps[0]}, Timeout: 2 * time.Second,
	}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("cl", s, drv)

	var seed client.WriteResult
	seeded := false
	drv.Write([]byte("hot"), []byte("v"), func(r client.WriteResult) { seed = r; seeded = true })
	s.RunFor(time.Second)
	if !seeded || seed.Err != nil {
		t.Fatalf("seed write = %+v", seed)
	}

	const burst = 8
	var ok, shed int
	for i := 0; i < burst; i++ {
		drv.ReadAt([]byte("hot"), wire.Quorum, func(r client.ReadResult) {
			switch {
			case r.Err == nil:
				ok++
			case errors.Is(r.Err, client.ErrOverloaded):
				shed++
			default:
				t.Errorf("unexpected error: %v", r.Err)
			}
		})
	}
	s.RunFor(5 * time.Second)
	if ok == 0 {
		t.Fatal("no read inside the bound succeeded")
	}
	if shed == 0 {
		t.Fatal("burst beyond MaxInFlight was not shed")
	}
	if m := c.AggregateMetrics(); m.Overloaded != uint64(shed) {
		t.Fatalf("Metrics.Overloaded = %d, want %d", m.Overloaded, shed)
	}
}

// TestDeadlineClampsCoordinatorTimeout pins server-side deadline handling:
// a request carrying a small DeadlineMs must be abandoned at the deadline,
// not at the coordinator's (much longer) configured timeout.
func TestDeadlineClampsCoordinatorTimeout(t *testing.T) {
	spec := DefaultSpec()
	spec.ReadTimeout = 10 * time.Second // configured timeout is enormous
	s := sim.New(9)
	c, err := BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	reps := ring.ReplicasForKey(c.Ring, c.Strategy, []byte("dk"))
	coord := reps[0]
	// Cut the coordinator off from every other replica: a QUORUM read can
	// only end by timing out.
	c.Faults.Apply(faults.Update{Partition: &faults.PartitionSpec{
		A: []string{string(coord)}, B: []string{faults.Wildcard},
	}}, memberIDs(c))

	drv, err := client.New(client.Options{
		ID: "cl", Coordinators: []ring.NodeID{coord}, Timeout: 50 * time.Millisecond,
	}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("cl", s, drv)

	var res client.ReadResult
	done := false
	drv.ReadAt([]byte("dk"), wire.Quorum, func(r client.ReadResult) { res = r; done = true })
	s.RunFor(500 * time.Millisecond)
	if !done || !errors.Is(res.Err, client.ErrTimeout) {
		t.Fatalf("read done=%v err=%v, want fast ErrTimeout", done, res.Err)
	}
	// The coordinator must have abandoned the op at the client's deadline,
	// ~50ms in, far before its own 10s timeout — observable as a counted
	// read timeout well within the 500ms we simulated.
	if m := c.AggregateMetrics(); m.ReadTimeouts == 0 {
		t.Fatalf("coordinator still holds the expired op: %+v", m)
	}
}

func memberIDs(c *Cluster) []string {
	out := make([]string, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		out = append(out, string(n.cfg.ID))
	}
	return out
}

package core

import (
	"testing"
	"time"

	"harmony/internal/wire"
)

// hotObs is an observation whose rates push the estimator well above any
// modest tolerance (heavy updates, high latency).
func hotObs(at int64) Observation {
	return Observation{
		At: time.Unix(at, 0), ReadRate: 1000, WriteInterval: 0.002,
		Latency: 20 * time.Millisecond, Window: time.Second,
	}
}

func TestControllerSessionGroupServedAtSession(t *testing.T) {
	byPrefix := func(key []byte) int {
		if len(key) > 0 && key[0] == 'a' {
			return 0
		}
		return 1
	}
	ctl := NewController(ControllerConfig{
		Policy:        Policy{ToleratedStaleRate: 0.05},
		N:             5,
		Groups:        2,
		GroupFn:       byPrefix,
		SessionGroups: []bool{true, false},
	})

	// Calm regime: a session flag never raises the level above ONE.
	ctl.Observe(Observation{At: time.Unix(1, 0), ReadRate: 100, WriteInterval: 10, Latency: 100 * time.Microsecond, Window: time.Second})
	if d := ctl.GroupLast(0); d.Level != wire.One {
		t.Fatalf("calm session group decision = %+v, want ONE", d)
	}

	// Hot regime: the unflagged group climbs the classic menu, the flagged
	// one is served at SESSION — single-replica blocking, write ONE.
	ctl.Observe(hotObs(2))
	d0, d1 := ctl.GroupLast(0), ctl.GroupLast(1)
	if d1.Level == wire.One || d1.Level == wire.Session {
		t.Fatalf("unflagged group decision = %+v, want classic level above ONE", d1)
	}
	if d0.Level != wire.Session || d0.Xn != 1 {
		t.Fatalf("session group decision = %+v, want SESSION with Xn=1", d0)
	}
	if d0.WriteLevel != wire.One {
		t.Fatalf("session group write level = %v, want ONE", d0.WriteLevel)
	}

	// LevelsFor (the client.ConsistencyPolicy surface) agrees with the
	// per-group streams.
	if r, w := ctl.LevelsFor([]byte("alpha")); r != wire.Session || w != wire.One {
		t.Fatalf("LevelsFor(session key) = %v/%v", r, w)
	}
	if r, _ := ctl.LevelsFor([]byte("bulk")); r != d1.Level {
		t.Fatalf("LevelsFor(classic key) read = %v, want %v", r, d1.Level)
	}
}

func TestControllerSessionOverridesAdaptiveWriteLevels(t *testing.T) {
	// Zero tolerance normally drives Xn past quorum, which adaptive write
	// levels convert to quorum reads + quorum writes; a session flag takes
	// precedence: reads at SESSION, writes back at ONE.
	ctl := NewController(ControllerConfig{
		Policy:              Policy{ToleratedStaleRate: 0},
		N:                   5,
		AdaptiveWriteLevels: true,
		SessionGroups:       []bool{true},
	})
	ctl.Observe(hotObs(1))
	if d := ctl.GroupLast(0); d.Level != wire.Session || d.WriteLevel != wire.One {
		t.Fatalf("decision = %+v, want SESSION reads with ONE writes", d)
	}
	// The global stream is not session-scoped and keeps the quorum overlap.
	if d := ctl.Last(); d.Level != wire.Quorum || d.WriteLevel != wire.Quorum {
		t.Fatalf("global decision = %+v, want quorum/quorum", d)
	}
}

func TestControllerRegroupClearsSessionFlags(t *testing.T) {
	ctl := NewController(ControllerConfig{
		Policy:        Policy{ToleratedStaleRate: 0.05},
		N:             5,
		SessionGroups: []bool{true},
	})
	ctl.Observe(hotObs(1))
	if d := ctl.GroupLast(0); d.Level != wire.Session {
		t.Fatalf("pre-regroup decision = %+v, want SESSION", d)
	}

	// New epoch: group ids change meaning, so the flags must not carry over.
	ctl.Regroup(1, nil, []float64{0.05}, []int{0})
	ctl.Observe(Observation{At: time.Unix(2, 0), ReadRate: 1000, WriteInterval: 0.002,
		Latency: 20 * time.Millisecond, Window: time.Second, Epoch: 1})
	if d := ctl.GroupLast(0); d.Level == wire.Session || d.Level == wire.One {
		t.Fatalf("post-regroup decision = %+v, want classic level above ONE", d)
	}

	// Re-arming restores session-tier selection for the new epoch.
	ctl.SetSessionGroups([]bool{true})
	ctl.Observe(Observation{At: time.Unix(3, 0), ReadRate: 1000, WriteInterval: 0.002,
		Latency: 20 * time.Millisecond, Window: time.Second, Epoch: 1})
	if d := ctl.GroupLast(0); d.Level != wire.Session {
		t.Fatalf("re-armed decision = %+v, want SESSION", d)
	}
}

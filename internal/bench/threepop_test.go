package bench

import (
	"testing"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/grouping"
	"harmony/internal/sim"
	"harmony/internal/ycsb"
)

// TestThreePopulationLearnsMiddleTier drives a hot/warm/cold workload and
// verifies the grouping subsystem at K=3 learns a USEFUL middle tier: the
// three populations land in three distinct categories whose tolerances
// order hot < warm < cold, and every group's measured staleness honors its
// learned tolerance. (PR 3 proved K=2 end to end; the subsystem always
// supported arbitrary K — this is the first workload that rewards it.)
func TestThreePopulationLearnsMiddleTier(t *testing.T) {
	const (
		hotKeys   = 300
		warmStart = 3000
		// The warm population must fit inside the nodes' key samples: keys
		// the sampler never exports default to the loose group (unsampled
		// means cold by construction), so a middle tier is only learnable
		// for data hot enough to be observed.
		warmKeys  = 600
		totalKeys = 20_000
		minTol    = 0.05
		maxTol    = 0.50
	)
	s := sim.New(5)
	sc := Grid5000()
	cspec := sc.Spec
	cspec.Groups = 3
	tols := []float64{minTol, (minTol + maxTol) / 2, maxTol}
	initial, err := grouping.Uniform(tols, 2)
	if err != nil {
		t.Fatal(err)
	}
	cspec.GroupFn = initial.GroupOf
	cspec.KeySampleLimit = 512
	cspec.KeyStatsDecay = 0.8
	c, err := cluster.BuildSim(s, cspec)
	if err != nil {
		t.Fatal(err)
	}

	ctl := core.NewController(core.ControllerConfig{
		Policy:               core.Policy{Name: "threepop", ToleratedStaleRate: minTol},
		N:                    cspec.RF,
		BandwidthBytesPerSec: cspec.Profile.BandwidthBytesPerSec,
		Groups:               3,
		GroupFn:              cspec.GroupFn,
		GroupTolerances:      tols,
	})
	rg, err := grouping.New(grouping.Config{
		Self:         "harmony-monitor",
		Nodes:        c.NodeIDs(),
		K:            3,
		MinTolerance: minTol,
		MaxTolerance: maxTol,
		Interval:     time.Second,
		Seed:         5,
		Controller:   ctl,
		Initial:      initial,
	}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "harmony-monitor",
		Nodes:          c.NodeIDs(),
		Interval:       sc.MonitorInterval,
		ReplicaSetSize: cspec.RF,
		OnObservation:  ctl.Observe,
		OnNodeStats:    rg.IngestStats,
	}, s, c.Bus)
	c.Net.Colocate("harmony-monitor", c.NodeIDs()[0])
	c.Bus.Register("harmony-monitor", s, mon)

	newRunner := func(wl ycsb.Workload, threads int, offset int64, prefix string, seedOff int64) *ycsb.Runner {
		r, err := ycsb.NewRunner(ycsb.RunConfig{
			Workload:     wl,
			Threads:      threads,
			ShadowEvery:  4,
			Seed:         5 + seedOff,
			ClientPrefix: prefix,
			Policy:       ctl,
			KeyOffset:    offset,
		}, s, c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	hotR := newRunner(ycsb.Workload{
		Name: "threepop-hot", ReadProportion: 0.3, UpdateProportion: 0.7,
		RecordCount: hotKeys, ValueBytes: 1024, RequestDistribution: ycsb.DistZipfian,
	}, 12, 0, "hot", 101)
	warmR := newRunner(ycsb.Workload{
		Name: "threepop-warm", ReadProportion: 0.7, UpdateProportion: 0.3,
		RecordCount: warmKeys, ValueBytes: 1024, RequestDistribution: ycsb.DistUniform,
	}, 12, warmStart, "warm", 202)
	coldR := newRunner(ycsb.Workload{
		Name: "threepop-cold", ReadProportion: 0.97, UpdateProportion: 0.03,
		RecordCount: totalKeys, ValueBytes: 1024, RequestDistribution: ycsb.DistUniform,
	}, 30, 0, "cold", 303)
	coldR.Load() // spans the whole keyspace

	mon.Start()
	rg.Start()
	hotR.Start()
	warmR.Start()
	coldR.Start()
	// Enough regroup cycles for the learned assignment to stabilize.
	s.RunFor(5 * time.Second)
	hotR.ResetMeasurement()
	warmR.ResetMeasurement()
	coldR.ResetMeasurement()
	const ops = 10_000
	for hotR.Completed()+warmR.Completed()+coldR.Completed() < ops {
		if !s.Step() {
			t.Fatal("simulation went idle")
		}
	}
	rep := hotR.Report()
	hotR.Stop()
	warmR.Stop()
	coldR.Stop()
	rg.Stop()
	mon.Stop()
	hotR.Drain()
	warmR.Drain()
	coldR.Drain()

	if rg.Epochs() == 0 {
		t.Fatal("no learned epoch was ever applied")
	}
	cur := rg.Current()
	if got := cur.Groups(); got != 3 {
		t.Fatalf("learned %d groups, want 3", got)
	}
	learnedTols := cur.Tolerances()

	// The three populations must occupy three distinct tiers, ordered by
	// contention: the plurality group of each population's probe keys.
	plurality := func(start int64, n int) int {
		votes := map[int]int{}
		for i := int64(0); i < int64(n); i++ {
			votes[cur.GroupOf(ycsb.Key(start+i))]++
		}
		best, bestN := -1, 0
		for g, v := range votes {
			if v > bestN {
				best, bestN = g, v
			}
		}
		return best
	}
	gh := plurality(0, 40)
	gw := plurality(warmStart, 40)
	gc := plurality(15_000, 40)
	t.Logf("epochs=%d tols=%v hot->%d warm->%d cold->%d", rg.Epochs(), learnedTols, gh, gw, gc)
	if gh == gw || gw == gc || gh == gc {
		t.Fatalf("populations share categories: hot=%d warm=%d cold=%d", gh, gw, gc)
	}
	if !(learnedTols[gh] < learnedTols[gw] && learnedTols[gw] < learnedTols[gc]) {
		t.Fatalf("middle tier not useful: tol(hot)=%.3f tol(warm)=%.3f tol(cold)=%.3f",
			learnedTols[gh], learnedTols[gw], learnedTols[gc])
	}

	// Per-group tolerance compliance over the measured window.
	if len(rep.Groups) != 3 {
		t.Fatalf("report has %d groups, want 3", len(rep.Groups))
	}
	for g, gs := range rep.Groups {
		if gs.ShadowSamples == 0 {
			t.Fatalf("group %d never probed (reads=%d writes=%d)", g, gs.Reads, gs.Writes)
		}
		if frac := gs.StaleFraction(); frac > learnedTols[g] {
			t.Fatalf("group %d stale fraction %.3f exceeds learned tolerance %.3f",
				g, frac, learnedTols[g])
		}
	}
}

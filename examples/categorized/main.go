// Categorized: the paper's §VII future work, running end to end — "divide
// data into different consistency categories without any human interaction
// by applying clustering techniques". A mixed application holds account
// balances (hot, update-contended — staleness is costly) and profile pages
// (cold, read-mostly — staleness is invisible) in one keyspace. KeyStats
// observes the access pattern, k-means separates the two populations, and
// each read is served at the level its key's category demands.
//
//	go run ./examples/categorized
package main

import (
	"fmt"
	"log"
	"time"

	"harmony/internal/client"
	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

const (
	accounts = 40  // hot keys: balances updated constantly
	profiles = 400 // cold keys: rarely written
)

func main() {
	s := sim.New(7)
	spec := cluster.DefaultSpec()
	c, err := cluster.BuildSim(s, spec)
	if err != nil {
		log.Fatal(err)
	}

	// Track per-key access patterns while the application runs.
	stats := core.NewKeyStats(0.8)

	drv, err := client.New(client.Options{
		ID: "app", Coordinators: c.NodeIDs(), Policy: client.Fixed{Write: wire.One},
	}, s, c.Bus)
	if err != nil {
		log.Fatal(err)
	}
	c.Bus.Register("app", s, drv)

	// Phase 1: observe the mixed workload. Balances take a write per read;
	// profiles are almost purely read.
	fmt.Println("phase 1: observing the mixed workload...")
	rng := s.NewStream()
	var pending int
	for i := 0; i < 12000; i++ {
		var key []byte
		write := false
		if rng.Intn(2) == 0 {
			key = []byte(fmt.Sprintf("balance-%03d", rng.Intn(accounts)))
			write = rng.Intn(2) == 0
		} else {
			key = []byte(fmt.Sprintf("profile-%04d", rng.Intn(profiles)))
			write = rng.Intn(50) == 0
		}
		pending++
		if write {
			stats.ObserveWrite(key)
			drv.Write(key, []byte("v"), func(client.WriteResult) { pending-- })
		} else {
			stats.ObserveRead(key)
			drv.Read(key, func(client.ReadResult) { pending-- })
		}
		if i%200 == 0 {
			s.RunFor(50 * time.Millisecond)
		}
	}
	s.RunFor(5 * time.Second)
	fmt.Printf("tracked %d distinct keys\n", stats.Len())

	// Phase 2: cluster the keyspace into two consistency categories.
	cat, err := core.NewCategorizer(2, 0.5, 99)
	if err != nil {
		log.Fatal(err)
	}
	if err := cat.Recluster(stats, 0.05, 0.80); err != nil {
		log.Fatal(err)
	}
	for i, cg := range cat.Categories() {
		fmt.Printf("category %d: %4d keys, tolerance %.0f%% (centroid writeShare=%.2f)\n",
			i, cg.Keys, cg.Tolerance*100, cg.Centroid[1])
	}

	// Phase 3: serve reads per category. The per-key source combines the
	// category tolerance with the live estimation model.
	pkl := &core.PerKeyLevels{Cat: cat}
	pkl.SetN(spec.RF)
	// A contended moment: high rates, visible propagation delay.
	pkl.Observe(core.Observation{ReadRate: 400, WriteInterval: 0.004, Latency: time.Millisecond})

	balanceLvl := pkl.ReadLevelFor([]byte("balance-001"))
	profileLvl := pkl.ReadLevelFor([]byte("profile-0001"))
	fmt.Printf("\nunder load: balance reads use %s, profile reads use %s\n", balanceLvl, profileLvl)

	// Quiet moment: everyone can relax to eventual consistency.
	pkl.Observe(core.Observation{ReadRate: 5, WriteInterval: 1, Latency: 200 * time.Microsecond})
	fmt.Printf("when quiet: balance reads use %s, profile reads use %s\n",
		pkl.ReadLevelFor([]byte("balance-001")), pkl.ReadLevelFor([]byte("profile-0001")))

	// The driver consumes the per-key policy directly:
	drv2, err := client.New(client.Options{
		ID: "app2", Coordinators: c.NodeIDs(), Policy: pkl,
	}, s, c.Bus)
	if err != nil {
		log.Fatal(err)
	}
	c.Bus.Register("app2", s, drv2)
	pkl.Observe(core.Observation{ReadRate: 400, WriteInterval: 0.004, Latency: time.Millisecond})
	done := false
	var got client.ReadResult
	drv2.Read([]byte("balance-001"), func(r client.ReadResult) { got = r; done = true })
	s.RunFor(time.Second)
	if done {
		fmt.Printf("\nbalance-001 read served at level %s — no per-operation code needed\n", got.Achieved)
	}
}

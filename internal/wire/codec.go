package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"slices"
	"sync"
)

// Codec errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrTruncated     = errors.New("wire: truncated payload")
	ErrUnknownKind   = errors.New("wire: unknown message kind")
)

// MaxFrame bounds a single encoded message; oversized frames indicate stream
// corruption, not a legitimate payload.
const MaxFrame = 16 << 20

// buffer is a simple append-only writer / cursor reader used by the codec.
// When share is set, rBytes returns subslices of the input instead of
// copies (see DecodeShared).
type buffer struct {
	b     []byte
	off   int
	share bool
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// varintLen returns the encoded length of v as a zig-zag varint.
func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

func bytesLen(p []byte) int { return uvarintLen(uint64(len(p))) + len(p) }
func strLen(s string) int   { return uvarintLen(uint64(len(s))) + len(s) }

func clockLen(c []ClockEntry) int {
	n := uvarintLen(uint64(len(c)))
	for _, e := range c {
		n += strLen(e.Node) + uvarintLen(e.Counter)
	}
	return n
}

func valueLen(v Value) int {
	return bytesLen(v.Data) + varintLen(v.Timestamp) + 1 + clockLen(v.Clock)
}

func entriesLen(es []GossipEntry) int {
	n := uvarintLen(uint64(len(es)))
	for _, e := range es {
		n += strLen(e.Node) + uvarintLen(e.Generation) + uvarintLen(e.Version)
	}
	return n
}

// bodySize returns the exact encoded length of m's frame body (kind byte +
// payload) without encoding anything. It must mirror the Encode switch
// field-for-field; TestBodySizeMatchesEncoding pins the two together.
func bodySize(m Message) (int, error) {
	switch v := m.(type) {
	case ReadRequest:
		return 1 + uvarintLen(v.ID) + bytesLen(v.Key) + 2 + clockLen(v.Token) + uvarintLen(v.DeadlineMs), nil
	case ReadResponse:
		return 1 + uvarintLen(v.ID) + 1 + valueLen(v.Value) + 2, nil
	case WriteRequest:
		return 1 + uvarintLen(v.ID) + bytesLen(v.Key) + bytesLen(v.Value) + 2 +
			uvarintLen(v.DeadlineMs) + varintLen(v.TsHint), nil
	case WriteResponse:
		return 1 + uvarintLen(v.ID) + 1 + varintLen(v.Timestamp) + clockLen(v.Clock), nil
	case ReplicaRead:
		return 1 + uvarintLen(v.ID) + bytesLen(v.Key), nil
	case ReplicaReadResp:
		return 1 + uvarintLen(v.ID) + 1 + valueLen(v.Value), nil
	case Mutation:
		return 1 + uvarintLen(v.ID) + bytesLen(v.Key) + valueLen(v.Value) + 1, nil
	case MutationAck:
		return 1 + uvarintLen(v.ID), nil
	case Repair:
		return 1 + bytesLen(v.Key) + valueLen(v.Value), nil
	case StatsRequest:
		return 1 + uvarintLen(v.ID), nil
	case StatsResponse:
		n := 1 + uvarintLen(v.ID) + uvarintLen(v.Reads) + uvarintLen(v.Writes) +
			uvarintLen(v.ReplicaOps) + uvarintLen(v.BytesRead) + uvarintLen(v.BytesWrit) +
			uvarintLen(v.RepairsSent) + uvarintLen(v.HintsQueued) +
			uvarintLen(v.RepairRows) + uvarintLen(v.RepairAgeMs) +
			uvarintLen(v.RecoveredRows) + uvarintLen(v.AliveMembers) +
			uvarintLen(uint64(len(v.Groups)))
		for _, g := range v.Groups {
			n += uvarintLen(g.Reads) + uvarintLen(g.Writes) + uvarintLen(g.BytesWritten) +
				uvarintLen(g.RepairRows) + uvarintLen(g.RepairAgeMs)
		}
		n += uvarintLen(v.Epoch) + uvarintLen(uint64(len(v.KeySamples)))
		for _, ks := range v.KeySamples {
			n += bytesLen(ks.Key) + 16
		}
		return n, nil
	case Ping:
		return 1 + uvarintLen(v.ID) + varintLen(v.Sent), nil
	case Pong:
		return 1 + uvarintLen(v.ID) + varintLen(v.Sent), nil
	case GossipSyn:
		return 1 + strLen(v.From) + entriesLen(v.Digests), nil
	case GossipAck:
		return 1 + strLen(v.From) + entriesLen(v.Entries), nil
	case Error:
		return 1 + uvarintLen(v.ID) + 1 + strLen(v.Msg), nil
	case GroupUpdate:
		n := 1 + uvarintLen(v.Epoch) + uvarintLen(uint64(len(v.Tolerances))) +
			8*len(v.Tolerances) + uvarintLen(uint64(v.Default)) +
			uvarintLen(uint64(len(v.Entries)))
		for _, e := range v.Entries {
			n += bytesLen(e.Key) + uvarintLen(uint64(e.Group))
		}
		return n, nil
	case TreeRequest:
		return 1 + uvarintLen(v.ID) + uvarintLen(uint64(len(v.Ranges))) + 16*len(v.Ranges), nil
	case TreeResponse:
		n := 1 + uvarintLen(v.ID) + uvarintLen(uint64(len(v.Trees)))
		for _, t := range v.Trees {
			n += 16 + 8 + uvarintLen(uint64(len(t.Leaves))) + 8*len(t.Leaves)
		}
		return n, nil
	case RangeSync:
		n := 1 + uvarintLen(v.ID) + uvarintLen(uint64(v.LeafCount)) +
			uvarintLen(uint64(len(v.Leaves)))
		for _, l := range v.Leaves {
			n += 16 + uvarintLen(uint64(l.Leaf))
		}
		n += uvarintLen(uint64(len(v.Entries)))
		for _, e := range v.Entries {
			n += bytesLen(e.Key) + valueLen(e.Value)
		}
		return n + 2, nil
	default:
		return 0, fmt.Errorf("%w: %T", ErrUnknownKind, m)
	}
}

func (w *buffer) uvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}

func (w *buffer) varint(v int64) {
	w.b = binary.AppendVarint(w.b, v)
}

func (w *buffer) bytes(p []byte) {
	w.uvarint(uint64(len(p)))
	w.b = append(w.b, p...)
}

func (w *buffer) str(s string) { w.bytes([]byte(s)) }

func (w *buffer) bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

func (w *buffer) byte(v byte) { w.b = append(w.b, v) }

// f64 writes a float64 as fixed 8-byte big-endian IEEE-754 bits (float bits
// are high-entropy, so varint encoding would not help).
func (w *buffer) f64(v float64) {
	w.b = binary.BigEndian.AppendUint64(w.b, math.Float64bits(v))
}

// u64 writes a fixed 8-byte big-endian word; ring tokens and Merkle hashes
// are uniformly distributed, so varint encoding would only add bytes.
func (w *buffer) u64(v uint64) {
	w.b = binary.BigEndian.AppendUint64(w.b, v)
}

func (w *buffer) tokenRange(r TokenRange) {
	w.u64(r.Start)
	w.u64(r.End)
}

func (r *buffer) rUvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *buffer) rVarint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *buffer) rBytes() ([]byte, error) {
	n, err := r.rUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.off) {
		return nil, ErrTruncated
	}
	if n == 0 {
		return nil, nil
	}
	if r.share {
		out := r.b[r.off : r.off+int(n) : r.off+int(n)]
		r.off += int(n)
		return out, nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	return out, nil
}

func (r *buffer) rStr() (string, error) {
	b, err := r.rBytes()
	return string(b), err
}

func (r *buffer) rBool() (bool, error) {
	b, err := r.rByte()
	return b != 0, err
}

func (r *buffer) rByte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, ErrTruncated
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *buffer) rF64() (float64, error) {
	if len(r.b)-r.off < 8 {
		return 0, ErrTruncated
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

func (r *buffer) rU64() (uint64, error) {
	if len(r.b)-r.off < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *buffer) rTokenRange() (TokenRange, error) {
	var tr TokenRange
	var err error
	if tr.Start, err = r.rU64(); err != nil {
		return tr, err
	}
	if tr.End, err = r.rU64(); err != nil {
		return tr, err
	}
	return tr, nil
}

func (w *buffer) clock(c []ClockEntry) {
	w.uvarint(uint64(len(c)))
	for _, e := range c {
		w.str(e.Node)
		w.uvarint(e.Counter)
	}
}

func (r *buffer) rClock() ([]ClockEntry, error) {
	n, err := r.rUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) { // cheap sanity bound
		return nil, ErrTruncated
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]ClockEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e ClockEntry
		if e.Node, err = r.rStr(); err != nil {
			return nil, err
		}
		if e.Counter, err = r.rUvarint(); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func (w *buffer) value(v Value) {
	w.bytes(v.Data)
	w.varint(v.Timestamp)
	w.bool(v.Tombstone)
	w.clock(v.Clock)
}

func (r *buffer) rValue() (Value, error) {
	var v Value
	var err error
	if v.Data, err = r.rBytes(); err != nil {
		return v, err
	}
	if v.Timestamp, err = r.rVarint(); err != nil {
		return v, err
	}
	if v.Tombstone, err = r.rBool(); err != nil {
		return v, err
	}
	if v.Clock, err = r.rClock(); err != nil {
		return v, err
	}
	return v, nil
}

// Encode serializes m into a self-delimiting frame appended to dst.
//
// The frame is written directly into dst — the body size is computed up
// front (bodySize), the length prefix appended, and every field encoded in
// place — so encoding performs no intermediate copy and allocates only when
// dst lacks capacity. Hot paths that reuse a buffer (wire.Writer, the pooled
// frame path) therefore encode allocation-free.
func Encode(dst []byte, m Message) ([]byte, error) {
	size, err := bodySize(m)
	if err != nil {
		return dst, err
	}
	if size > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	dst = slices.Grow(dst, uvarintLen(uint64(size))+size)
	dst = binary.AppendUvarint(dst, uint64(size))
	w := buffer{b: dst}
	w.byte(byte(m.Kind()))
	switch v := m.(type) {
	case ReadRequest:
		w.uvarint(v.ID)
		w.bytes(v.Key)
		w.byte(byte(v.Level))
		w.bool(v.Shadow)
		w.clock(v.Token)
		w.uvarint(v.DeadlineMs)
	case ReadResponse:
		w.uvarint(v.ID)
		w.bool(v.Found)
		w.value(v.Value)
		w.bool(v.Stale)
		w.byte(byte(v.Achieved))
	case WriteRequest:
		w.uvarint(v.ID)
		w.bytes(v.Key)
		w.bytes(v.Value)
		w.bool(v.Delete)
		w.byte(byte(v.Level))
		w.uvarint(v.DeadlineMs)
		w.varint(v.TsHint)
	case WriteResponse:
		w.uvarint(v.ID)
		w.bool(v.OK)
		w.varint(v.Timestamp)
		w.clock(v.Clock)
	case ReplicaRead:
		w.uvarint(v.ID)
		w.bytes(v.Key)
	case ReplicaReadResp:
		w.uvarint(v.ID)
		w.bool(v.Found)
		w.value(v.Value)
	case Mutation:
		w.uvarint(v.ID)
		w.bytes(v.Key)
		w.value(v.Value)
		w.bool(v.Hint)
	case MutationAck:
		w.uvarint(v.ID)
	case Repair:
		w.bytes(v.Key)
		w.value(v.Value)
	case StatsRequest:
		w.uvarint(v.ID)
	case StatsResponse:
		w.uvarint(v.ID)
		w.uvarint(v.Reads)
		w.uvarint(v.Writes)
		w.uvarint(v.ReplicaOps)
		w.uvarint(v.BytesRead)
		w.uvarint(v.BytesWrit)
		w.uvarint(v.RepairsSent)
		w.uvarint(v.HintsQueued)
		w.uvarint(v.RepairRows)
		w.uvarint(v.RepairAgeMs)
		w.uvarint(v.RecoveredRows)
		w.uvarint(v.AliveMembers)
		w.uvarint(uint64(len(v.Groups)))
		for _, g := range v.Groups {
			w.uvarint(g.Reads)
			w.uvarint(g.Writes)
			w.uvarint(g.BytesWritten)
			w.uvarint(g.RepairRows)
			w.uvarint(g.RepairAgeMs)
		}
		w.uvarint(v.Epoch)
		w.uvarint(uint64(len(v.KeySamples)))
		for _, ks := range v.KeySamples {
			w.bytes(ks.Key)
			w.f64(ks.Reads)
			w.f64(ks.Writes)
		}
	case Ping:
		w.uvarint(v.ID)
		w.varint(v.Sent)
	case Pong:
		w.uvarint(v.ID)
		w.varint(v.Sent)
	case GossipSyn:
		w.str(v.From)
		w.uvarint(uint64(len(v.Digests)))
		for _, d := range v.Digests {
			w.str(d.Node)
			w.uvarint(d.Generation)
			w.uvarint(d.Version)
		}
	case GossipAck:
		w.str(v.From)
		w.uvarint(uint64(len(v.Entries)))
		for _, d := range v.Entries {
			w.str(d.Node)
			w.uvarint(d.Generation)
			w.uvarint(d.Version)
		}
	case Error:
		w.uvarint(v.ID)
		w.byte(byte(v.Code))
		w.str(v.Msg)
	case GroupUpdate:
		w.uvarint(v.Epoch)
		w.uvarint(uint64(len(v.Tolerances)))
		for _, tol := range v.Tolerances {
			w.f64(tol)
		}
		w.uvarint(uint64(v.Default))
		w.uvarint(uint64(len(v.Entries)))
		for _, e := range v.Entries {
			w.bytes(e.Key)
			w.uvarint(uint64(e.Group))
		}
	case TreeRequest:
		w.uvarint(v.ID)
		w.uvarint(uint64(len(v.Ranges)))
		for _, rg := range v.Ranges {
			w.tokenRange(rg)
		}
	case TreeResponse:
		w.uvarint(v.ID)
		w.uvarint(uint64(len(v.Trees)))
		for _, t := range v.Trees {
			w.tokenRange(t.Range)
			w.u64(t.Root)
			w.uvarint(uint64(len(t.Leaves)))
			for _, l := range t.Leaves {
				w.u64(l)
			}
		}
	case RangeSync:
		w.uvarint(v.ID)
		w.uvarint(uint64(v.LeafCount))
		w.uvarint(uint64(len(v.Leaves)))
		for _, l := range v.Leaves {
			w.tokenRange(l.Range)
			w.uvarint(uint64(l.Leaf))
		}
		w.uvarint(uint64(len(v.Entries)))
		for _, e := range v.Entries {
			w.bytes(e.Key)
			w.value(e.Value)
		}
		w.bool(v.Reply)
		w.bool(v.Done)
	default:
		return dst, fmt.Errorf("%w: %T", ErrUnknownKind, m)
	}
	return w.b, nil
}

func decodeEntries(r *buffer) ([]GossipEntry, error) {
	n, err := r.rUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) { // cheap sanity bound
		return nil, ErrTruncated
	}
	out := make([]GossipEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e GossipEntry
		if e.Node, err = r.rStr(); err != nil {
			return nil, err
		}
		if e.Generation, err = r.rUvarint(); err != nil {
			return nil, err
		}
		if e.Version, err = r.rUvarint(); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// decodeBody decodes one frame body (kind byte + payload). share propagates
// to rBytes: byte-slice fields alias body instead of being copied.
func decodeBody(body []byte, share bool) (Message, error) {
	r := &buffer{b: body, share: share}
	kb, err := r.rByte()
	if err != nil {
		return nil, err
	}
	kind := Kind(kb)
	switch kind {
	case KindReadRequest:
		var m ReadRequest
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		if m.Key, err = r.rBytes(); err != nil {
			return nil, err
		}
		lb, err := r.rByte()
		if err != nil {
			return nil, err
		}
		m.Level = ConsistencyLevel(lb)
		if m.Shadow, err = r.rBool(); err != nil {
			return nil, err
		}
		if m.Token, err = r.rClock(); err != nil {
			return nil, err
		}
		if m.DeadlineMs, err = r.rUvarint(); err != nil {
			return nil, err
		}
		return m, nil
	case KindReadResponse:
		var m ReadResponse
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		if m.Found, err = r.rBool(); err != nil {
			return nil, err
		}
		if m.Value, err = r.rValue(); err != nil {
			return nil, err
		}
		if m.Stale, err = r.rBool(); err != nil {
			return nil, err
		}
		ab, err := r.rByte()
		if err != nil {
			return nil, err
		}
		m.Achieved = ConsistencyLevel(ab)
		return m, nil
	case KindWriteRequest:
		var m WriteRequest
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		if m.Key, err = r.rBytes(); err != nil {
			return nil, err
		}
		if m.Value, err = r.rBytes(); err != nil {
			return nil, err
		}
		if m.Delete, err = r.rBool(); err != nil {
			return nil, err
		}
		lb, err := r.rByte()
		if err != nil {
			return nil, err
		}
		m.Level = ConsistencyLevel(lb)
		if m.DeadlineMs, err = r.rUvarint(); err != nil {
			return nil, err
		}
		if m.TsHint, err = r.rVarint(); err != nil {
			return nil, err
		}
		return m, nil
	case KindWriteResponse:
		var m WriteResponse
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		if m.OK, err = r.rBool(); err != nil {
			return nil, err
		}
		if m.Timestamp, err = r.rVarint(); err != nil {
			return nil, err
		}
		if m.Clock, err = r.rClock(); err != nil {
			return nil, err
		}
		return m, nil
	case KindReplicaRead:
		var m ReplicaRead
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		if m.Key, err = r.rBytes(); err != nil {
			return nil, err
		}
		return m, nil
	case KindReplicaReadResp:
		var m ReplicaReadResp
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		if m.Found, err = r.rBool(); err != nil {
			return nil, err
		}
		if m.Value, err = r.rValue(); err != nil {
			return nil, err
		}
		return m, nil
	case KindMutation:
		var m Mutation
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		if m.Key, err = r.rBytes(); err != nil {
			return nil, err
		}
		if m.Value, err = r.rValue(); err != nil {
			return nil, err
		}
		if m.Hint, err = r.rBool(); err != nil {
			return nil, err
		}
		return m, nil
	case KindMutationAck:
		var m MutationAck
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		return m, nil
	case KindRepair:
		var m Repair
		if m.Key, err = r.rBytes(); err != nil {
			return nil, err
		}
		if m.Value, err = r.rValue(); err != nil {
			return nil, err
		}
		return m, nil
	case KindStatsRequest:
		var m StatsRequest
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		return m, nil
	case KindStatsResponse:
		var m StatsResponse
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		fields := []*uint64{&m.Reads, &m.Writes, &m.ReplicaOps, &m.BytesRead, &m.BytesWrit, &m.RepairsSent, &m.HintsQueued, &m.RepairRows, &m.RepairAgeMs, &m.RecoveredRows, &m.AliveMembers}
		for _, f := range fields {
			if *f, err = r.rUvarint(); err != nil {
				return nil, err
			}
		}
		ng, err := r.rUvarint()
		if err != nil {
			return nil, err
		}
		if ng > uint64(len(r.b)) { // cheap sanity bound
			return nil, ErrTruncated
		}
		if ng > 0 {
			m.Groups = make([]GroupCounters, 0, ng)
			for i := uint64(0); i < ng; i++ {
				var g GroupCounters
				gf := []*uint64{&g.Reads, &g.Writes, &g.BytesWritten, &g.RepairRows, &g.RepairAgeMs}
				for _, f := range gf {
					if *f, err = r.rUvarint(); err != nil {
						return nil, err
					}
				}
				m.Groups = append(m.Groups, g)
			}
		}
		if m.Epoch, err = r.rUvarint(); err != nil {
			return nil, err
		}
		nk, err := r.rUvarint()
		if err != nil {
			return nil, err
		}
		if nk > uint64(len(r.b)) { // cheap sanity bound
			return nil, ErrTruncated
		}
		if nk > 0 {
			m.KeySamples = make([]KeySample, 0, nk)
			for i := uint64(0); i < nk; i++ {
				var ks KeySample
				if ks.Key, err = r.rBytes(); err != nil {
					return nil, err
				}
				if ks.Reads, err = r.rF64(); err != nil {
					return nil, err
				}
				if ks.Writes, err = r.rF64(); err != nil {
					return nil, err
				}
				m.KeySamples = append(m.KeySamples, ks)
			}
		}
		return m, nil
	case KindPing:
		var m Ping
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		if m.Sent, err = r.rVarint(); err != nil {
			return nil, err
		}
		return m, nil
	case KindPong:
		var m Pong
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		if m.Sent, err = r.rVarint(); err != nil {
			return nil, err
		}
		return m, nil
	case KindGossipSyn:
		var m GossipSyn
		if m.From, err = r.rStr(); err != nil {
			return nil, err
		}
		if m.Digests, err = decodeEntries(r); err != nil {
			return nil, err
		}
		return m, nil
	case KindGossipAck:
		var m GossipAck
		if m.From, err = r.rStr(); err != nil {
			return nil, err
		}
		if m.Entries, err = decodeEntries(r); err != nil {
			return nil, err
		}
		return m, nil
	case KindError:
		var m Error
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		cb, err := r.rByte()
		if err != nil {
			return nil, err
		}
		m.Code = ErrorCode(cb)
		if m.Msg, err = r.rStr(); err != nil {
			return nil, err
		}
		return m, nil
	case KindGroupUpdate:
		var m GroupUpdate
		if m.Epoch, err = r.rUvarint(); err != nil {
			return nil, err
		}
		nt, err := r.rUvarint()
		if err != nil {
			return nil, err
		}
		if nt > uint64(len(r.b)) { // cheap sanity bound
			return nil, ErrTruncated
		}
		if nt > 0 {
			m.Tolerances = make([]float64, 0, nt)
			for i := uint64(0); i < nt; i++ {
				tol, err := r.rF64()
				if err != nil {
					return nil, err
				}
				m.Tolerances = append(m.Tolerances, tol)
			}
		}
		def, err := r.rUvarint()
		if err != nil {
			return nil, err
		}
		m.Default = uint32(def)
		ne, err := r.rUvarint()
		if err != nil {
			return nil, err
		}
		if ne > uint64(len(r.b)) { // cheap sanity bound
			return nil, ErrTruncated
		}
		if ne > 0 {
			m.Entries = make([]GroupAssign, 0, ne)
			for i := uint64(0); i < ne; i++ {
				var e GroupAssign
				if e.Key, err = r.rBytes(); err != nil {
					return nil, err
				}
				g, err := r.rUvarint()
				if err != nil {
					return nil, err
				}
				e.Group = uint32(g)
				m.Entries = append(m.Entries, e)
			}
		}
		return m, nil
	case KindTreeRequest:
		var m TreeRequest
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		nr, err := r.rUvarint()
		if err != nil {
			return nil, err
		}
		if nr > uint64(len(r.b)) { // cheap sanity bound
			return nil, ErrTruncated
		}
		if nr > 0 {
			m.Ranges = make([]TokenRange, 0, nr)
			for i := uint64(0); i < nr; i++ {
				tr, err := r.rTokenRange()
				if err != nil {
					return nil, err
				}
				m.Ranges = append(m.Ranges, tr)
			}
		}
		return m, nil
	case KindTreeResponse:
		var m TreeResponse
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		nt, err := r.rUvarint()
		if err != nil {
			return nil, err
		}
		if nt > uint64(len(r.b)) { // cheap sanity bound
			return nil, ErrTruncated
		}
		if nt > 0 {
			m.Trees = make([]RangeTree, 0, nt)
			for i := uint64(0); i < nt; i++ {
				var t RangeTree
				if t.Range, err = r.rTokenRange(); err != nil {
					return nil, err
				}
				if t.Root, err = r.rU64(); err != nil {
					return nil, err
				}
				nl, err := r.rUvarint()
				if err != nil {
					return nil, err
				}
				if nl > uint64(len(r.b)) { // cheap sanity bound
					return nil, ErrTruncated
				}
				if nl > 0 {
					t.Leaves = make([]uint64, 0, nl)
					for j := uint64(0); j < nl; j++ {
						l, err := r.rU64()
						if err != nil {
							return nil, err
						}
						t.Leaves = append(t.Leaves, l)
					}
				}
				m.Trees = append(m.Trees, t)
			}
		}
		return m, nil
	case KindRangeSync:
		var m RangeSync
		if m.ID, err = r.rUvarint(); err != nil {
			return nil, err
		}
		lc, err := r.rUvarint()
		if err != nil {
			return nil, err
		}
		m.LeafCount = uint32(lc)
		nl, err := r.rUvarint()
		if err != nil {
			return nil, err
		}
		if nl > uint64(len(r.b)) { // cheap sanity bound
			return nil, ErrTruncated
		}
		if nl > 0 {
			m.Leaves = make([]LeafRef, 0, nl)
			for i := uint64(0); i < nl; i++ {
				var l LeafRef
				if l.Range, err = r.rTokenRange(); err != nil {
					return nil, err
				}
				leaf, err := r.rUvarint()
				if err != nil {
					return nil, err
				}
				l.Leaf = uint32(leaf)
				m.Leaves = append(m.Leaves, l)
			}
		}
		ne, err := r.rUvarint()
		if err != nil {
			return nil, err
		}
		if ne > uint64(len(r.b)) { // cheap sanity bound
			return nil, ErrTruncated
		}
		if ne > 0 {
			m.Entries = make([]SyncEntry, 0, ne)
			for i := uint64(0); i < ne; i++ {
				var e SyncEntry
				if e.Key, err = r.rBytes(); err != nil {
					return nil, err
				}
				if e.Value, err = r.rValue(); err != nil {
					return nil, err
				}
				m.Entries = append(m.Entries, e)
			}
		}
		if m.Reply, err = r.rBool(); err != nil {
			return nil, err
		}
		if m.Done, err = r.rBool(); err != nil {
			return nil, err
		}
		return m, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrUnknownKind, kb)
}

// Decode parses one frame from b, returning the message and the number of
// bytes consumed. It returns ErrTruncated when b does not hold a complete
// frame yet (callers accumulating from a stream should read more). The
// returned message owns its memory: every byte-slice field is copied out of
// b, so the caller may reuse b immediately.
func Decode(b []byte) (Message, int, error) {
	return decode(b, false)
}

// DecodeShared parses one frame like Decode but borrows from the input: the
// returned message's byte-slice fields (keys, value payloads, key samples,
// sync entries) alias b directly, eliminating the per-field copies.
//
// Aliasing contract: the caller must not modify or reuse b while the message
// — or anything derived from it — is live. Paths that retain decoded bytes
// beyond the handling of one message (a coordinator stashing a read key in a
// pending-op table, the storage engine keeping a mutation's value) must copy
// those fields explicitly. The in-memory fabrics pass message structs
// without encoding, so this only matters to byte-stream transports; the
// stock wire.Reader keeps using Decode because its receive buffer is reused
// across frames.
func DecodeShared(b []byte) (Message, int, error) {
	return decode(b, true)
}

// DecodeBodyShared parses a frame body — the bytes after the length prefix —
// in shared mode. It exists for transports that read the prefix themselves
// (FrameReader reads the uvarint off the stream and the body into an owned
// per-frame buffer) and want the zero-copy decode without re-framing. The
// aliasing contract is DecodeShared's: the returned message's byte-slice
// fields alias body, which must stay untouched while the message is live.
func DecodeBodyShared(body []byte) (Message, error) {
	return decodeBody(body, true)
}

func decode(b []byte, share bool) (Message, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, ErrTruncated
	}
	if n > MaxFrame {
		return nil, 0, ErrFrameTooLarge
	}
	if uint64(len(b)-sz) < n {
		return nil, 0, ErrTruncated
	}
	m, err := decodeBody(b[sz:sz+int(n)], share)
	if err != nil {
		return nil, 0, err
	}
	return m, sz + int(n), nil
}

// Writer frames messages onto an io.Writer.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a framing writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write encodes and writes one message.
func (fw *Writer) Write(m Message) error {
	fw.buf = fw.buf[:0]
	b, err := Encode(fw.buf, m)
	if err != nil {
		return err
	}
	fw.buf = b
	_, err = fw.w.Write(b)
	return err
}

// Reader parses framed messages from an io.Reader.
type Reader struct {
	r    io.Reader
	buf  []byte
	have int
}

// NewReader returns a framing reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, buf: make([]byte, 0, 4096)}
}

// Read returns the next complete message, blocking on the underlying reader
// as needed.
func (fr *Reader) Read() (Message, error) {
	for {
		if fr.have > 0 {
			m, n, err := Decode(fr.buf[:fr.have])
			if err == nil {
				copy(fr.buf, fr.buf[n:fr.have])
				fr.have -= n
				return m, nil
			}
			if !errors.Is(err, ErrTruncated) {
				return nil, err
			}
		}
		if fr.have == len(fr.buf) {
			next := make([]byte, max(len(fr.buf)*2, 4096))
			copy(next, fr.buf[:fr.have])
			fr.buf = next
		} else {
			fr.buf = fr.buf[:cap(fr.buf)]
		}
		n, err := fr.r.Read(fr.buf[fr.have:])
		if n == 0 && err != nil {
			return nil, err
		}
		fr.have += n
	}
}

// Size returns the encoded size of m in bytes; the simulator uses it to
// model serialization/bandwidth delay. It is a pure computation over the
// message's fields — nothing is encoded and nothing allocates — so the
// in-memory fabrics can call it on every send.
func Size(m Message) int {
	n, err := bodySize(m)
	if err != nil {
		return 0
	}
	return uvarintLen(uint64(n)) + n
}

// framePool recycles encode scratch buffers for transports whose senders
// run concurrently (the TCP backend encodes outside its per-connection
// lock). Buffers that ballooned past a frame-ish size are dropped rather
// than pinned in the pool.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

const maxPooledFrame = 1 << 20

// GetFrame encodes m into a pooled scratch buffer and returns it; release
// with PutFrame once the bytes have been handed to the kernel (or copied).
func GetFrame(m Message) (*[]byte, error) {
	bp := framePool.Get().(*[]byte)
	b, err := Encode((*bp)[:0], m)
	if err != nil {
		framePool.Put(bp)
		return nil, err
	}
	*bp = b
	return bp, nil
}

// PutFrame returns a GetFrame buffer to the pool.
func PutFrame(bp *[]byte) {
	if cap(*bp) > maxPooledFrame {
		return
	}
	framePool.Put(bp)
}

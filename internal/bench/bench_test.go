package bench

import (
	"strings"
	"testing"
	"time"

	"harmony/internal/ycsb"
)

// quickOpts keeps in-test experiment cost low while still exercising the
// full pipeline (cluster, workload, monitor, controller, figures).
func quickOpts() Options {
	return Options{
		OpsPerPoint:   4000,
		Threads:       []int{4, 40},
		Seed:          1,
		PhaseDuration: 2 * time.Second,
	}
}

func TestFigureFormatAndCSV(t *testing.T) {
	f := Figure{
		ID: "figx", Title: "test", XLabel: "threads", YLabel: "ops/s",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Y: 10}, {X: 2, Y: 20}}},
			{Name: "b", Points: []Point{{X: 1, Y: 30}}},
		},
	}
	out := f.Format()
	for _, want := range []string{"figx", "threads", "a", "b", "10", "30", "ops/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	// Missing point renders as '-'.
	if !strings.Contains(out, "-") {
		t.Fatalf("missing point not rendered:\n%s", out)
	}
	csv := f.CSV()
	if !strings.Contains(csv, "figx,a,1,10") {
		t.Fatalf("CSV malformed:\n%s", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 { // header + 3 points
		t.Fatalf("CSV has %d lines", len(lines))
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]PolicySpec{
		"Eventual":    {Kind: PolicyEventual},
		"Strong":      {Kind: PolicyStrong},
		"Quorum":      {Kind: PolicyQuorum},
		"Harmony-20%": {Kind: PolicyHarmony, Tolerance: 0.2},
		"Harmony-40%-fixedTp": {
			Kind: PolicyHarmony, Tolerance: 0.4, FixedTp: time.Millisecond,
		},
	}
	for want, p := range cases {
		if got := p.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestScenarios(t *testing.T) {
	g, e := Grid5000(), EC2()
	if g.Name != "grid5000" || e.Name != "ec2" {
		t.Fatal("scenario names")
	}
	if g.HarmonyTolerances != [2]float64{0.20, 0.40} {
		t.Fatalf("grid5000 tolerances = %v", g.HarmonyTolerances)
	}
	if e.HarmonyTolerances != [2]float64{0.40, 0.60} {
		t.Fatalf("ec2 tolerances = %v", e.HarmonyTolerances)
	}
	pols := StandardPolicies(g)
	if len(pols) != 4 {
		t.Fatalf("standard policies = %d", len(pols))
	}
}

func TestRunPolicyValidation(t *testing.T) {
	if _, err := RunPolicy(RunSpec{Scenario: Grid5000(), Workload: ycsb.WorkloadA(), Threads: 1}); err == nil {
		t.Fatal("zero op budget accepted")
	}
}

func TestRunPolicyEventualVsStrong(t *testing.T) {
	sc := Grid5000()
	ev, err := RunPolicy(RunSpec{
		Scenario: sc, Policy: PolicySpec{Kind: PolicyEventual},
		Workload: ycsb.WorkloadA(), Threads: 40, Ops: 6000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunPolicy(RunSpec{
		Scenario: sc, Policy: PolicySpec{Kind: PolicyStrong},
		Workload: ycsb.WorkloadA(), Threads: 40, Ops: 6000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's core ordering: strong has zero stale reads and lower
	// throughput; eventual has stale reads and lower read latency.
	if st.Report.StaleReads != 0 {
		t.Fatalf("strong run had %d stale reads", st.Report.StaleReads)
	}
	if ev.Report.StaleReads == 0 {
		t.Fatal("eventual run had zero stale reads — staleness not modeled")
	}
	if ev.Report.ThroughputOps <= st.Report.ThroughputOps {
		t.Fatalf("eventual tput %.0f <= strong %.0f", ev.Report.ThroughputOps, st.Report.ThroughputOps)
	}
	if ev.Report.ReadLatency.P99() >= st.Report.ReadLatency.P99() {
		t.Fatalf("eventual p99 %v >= strong %v", ev.Report.ReadLatency.P99(), st.Report.ReadLatency.P99())
	}
	if len(ev.Decisions) != 0 {
		t.Fatal("static policy produced decisions")
	}
}

func TestRunPolicyHarmonyAdapts(t *testing.T) {
	res, err := RunPolicy(RunSpec{
		Scenario: Grid5000(),
		Policy:   PolicySpec{Kind: PolicyHarmony, Tolerance: 0.05},
		Workload: ycsb.WorkloadA(), Threads: 60, Ops: 8000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) == 0 {
		t.Fatal("no controller decisions recorded")
	}
	// A 5% tolerance under a 60-thread update-heavy load must escalate.
	sawEscalation := false
	for _, d := range res.Decisions {
		if d.Xn > 1 {
			sawEscalation = true
		}
	}
	if !sawEscalation {
		t.Fatal("Harmony-5% never escalated above ONE")
	}
	// And the escalation must buy fewer stale reads than eventual.
	ev, err := RunPolicy(RunSpec{
		Scenario: Grid5000(), Policy: PolicySpec{Kind: PolicyEventual},
		Workload: ycsb.WorkloadA(), Threads: 60, Ops: 8000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	hRate := ratio(res.Report.StaleReads, res.Report.ShadowSamples)
	eRate := ratio(ev.Report.StaleReads, ev.Report.ShadowSamples)
	if hRate >= eRate {
		t.Fatalf("Harmony-5%% stale rate %.4f not below eventual %.4f", hRate, eRate)
	}
}

func TestRunGridShape(t *testing.T) {
	opts := quickOpts()
	g, err := RunGrid(Grid5000(), []PolicySpec{{Kind: PolicyEventual}, {Kind: PolicyStrong}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Results) != 2 || len(g.Results[0]) != 2 {
		t.Fatalf("grid shape = %dx%d", len(g.Results), len(g.Results[0]))
	}
	lat := g.LatencyFigure("fig5a")
	tput := g.ThroughputFigure("fig5c")
	stale := g.StalenessFigure("fig6a")
	for _, f := range []Figure{lat, tput, stale} {
		if len(f.Series) != 2 {
			t.Fatalf("%s has %d series", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.Points) != 2 {
				t.Fatalf("%s/%s has %d points", f.ID, s.Name, len(s.Points))
			}
		}
	}
	// Throughput must grow with threads for both policies.
	for _, s := range tput.Series {
		if s.Points[1].Y <= s.Points[0].Y {
			t.Fatalf("throughput not increasing from 4 to 40 threads: %+v", s)
		}
	}
}

func TestFig4aSeries(t *testing.T) {
	opts := quickOpts()
	fig, err := Fig4a(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("fig4a series = %d, want workload A and B", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) < 5 {
			t.Fatalf("series %s has only %d samples", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Fatalf("estimate out of range: %v", p.Y)
			}
		}
	}
	// The paper's robust Fig. 4(a) claim: the estimate decreases as the
	// thread count steps down, for both workloads. Compare the first
	// phase's average against the last phase's.
	for _, s := range fig.Series {
		third := len(s.Points) / 3
		if third == 0 {
			t.Fatalf("series %s too short", s.Name)
		}
		head, tail := 0.0, 0.0
		for _, p := range s.Points[:third] {
			head += p.Y
		}
		for _, p := range s.Points[len(s.Points)-third:] {
			tail += p.Y
		}
		if head <= tail {
			t.Fatalf("series %s estimate did not decrease with threads: head=%.3f tail=%.3f",
				s.Name, head/float64(third), tail/float64(third))
		}
	}
	// Weak A-vs-B sanity: the closed form puts A at or slightly above B at
	// equal offered load; allow measurement noise but catch inversions.
	avg := func(s Series) float64 {
		sum := 0.0
		for _, p := range s.Points {
			sum += p.Y
		}
		return sum / float64(len(s.Points))
	}
	if a, b := avg(fig.Series[0]), avg(fig.Series[1]); a < 0.7*b {
		t.Fatalf("workload A estimate (%.3f) far below workload B (%.3f)", a, b)
	}
}

func TestFig4bMonotoneInLatency(t *testing.T) {
	est1, err := fig4bPoint(time.Millisecond, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	est2, err := fig4bPoint(30*time.Millisecond, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est2 <= est1 {
		t.Fatalf("estimate at 30ms (%.3f) not above 1ms (%.3f)", est2, est1)
	}
	if est1 < 0 || est2 > 1 {
		t.Fatalf("estimates out of range: %v %v", est1, est2)
	}
}

func TestHeadlineComputesRatios(t *testing.T) {
	opts := quickOpts()
	opts.OpsPerPoint = 6000
	sum, err := Headline(Grid5000(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.EventualStale == 0 {
		t.Fatal("eventual baseline had no stale reads")
	}
	if sum.StaleReductionVsEventual <= 0 {
		t.Fatalf("no stale reduction: %+v", sum)
	}
	if sum.ThroughputGainVsStrong <= 0 {
		t.Fatalf("no throughput gain over strong: %+v", sum)
	}
	out := sum.Format()
	if !strings.Contains(out, "stale reads") || !strings.Contains(out, "throughput") {
		t.Fatalf("format missing sections:\n%s", out)
	}
}

func TestScenarioRegistry(t *testing.T) {
	ss := Scenarios()
	for _, name := range []string{"grid5000", "ec2", "wan-heavytail", "degraded", "congested-bimodal", "drifting"} {
		sc, ok := ss[name]
		if !ok {
			t.Fatalf("registry missing scenario %q", name)
		}
		if sc.Name != name || sc.Spec.Profile.Name != name {
			t.Fatalf("scenario %q mismatched: profile %q", name, sc.Spec.Profile.Name)
		}
		if sc.MonitorInterval <= 0 || sc.HarmonyTolerances[0] <= 0 {
			t.Fatalf("scenario %q not fully configured: %+v", name, sc)
		}
	}
	if len(ss) != 6 {
		t.Fatalf("registry has %d scenarios, want 6", len(ss))
	}
	if ss["drifting"].Prepare == nil {
		t.Fatal("drifting scenario has no Prepare hook")
	}
}

// TestHotColdPerGroupBeatsGlobal pins the tentpole acceptance criterion:
// per-group adaptation achieves throughput at least matching the global
// Harmony controller while every group's measured staleness stays within
// its tolerance.
func TestHotColdPerGroupBeatsGlobal(t *testing.T) {
	spec := DefaultHotColdSpec()
	res, err := HotCold(spec, Options{OpsPerPoint: 12000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	if res.PerGroup.ThroughputOps < res.Global.ThroughputOps {
		t.Fatalf("per-group throughput %.0f below global %.0f",
			res.PerGroup.ThroughputOps, res.Global.ThroughputOps)
	}
	if len(res.PerGroup.Groups) != 2 {
		t.Fatalf("groups = %+v", res.PerGroup.Groups)
	}
	for _, g := range res.PerGroup.Groups {
		if !g.WithinTolerance {
			t.Fatalf("per-group run: %s staleness %.3f exceeds tolerance %.2f",
				g.Name, g.StaleFraction, g.Tolerance)
		}
		if g.ShadowSamples == 0 {
			t.Fatalf("%s group never probed", g.Name)
		}
	}
	// The differentiation that buys the throughput: the hot group holds a
	// level above ONE while the cold group's reads stay eventual.
	hot, cold := res.PerGroup.Groups[0], res.PerGroup.Groups[1]
	if hot.FinalLevel == "ONE" {
		t.Fatalf("hot group never escalated: %+v", hot)
	}
	if cold.FinalLevel != "ONE" {
		t.Fatalf("cold group did not stay eventual: %+v", cold)
	}
	if res.PerGroup.Errors > res.PerGroup.Operations/50 || res.Global.Errors > res.Global.Operations/50 {
		t.Fatalf("excessive errors: per-group %d, global %d", res.PerGroup.Errors, res.Global.Errors)
	}

	// Session arm: the hot group must be served at the SESSION tier, keep
	// its session contract (zero regressions over client.Session traffic),
	// stay within tolerance, and come out cheaper than the global arm whose
	// single knob drags every read to quorum-or-stronger.
	sess := res.Session
	if len(sess.Groups) != 2 {
		t.Fatalf("session arm groups = %+v", sess.Groups)
	}
	shot := sess.Groups[0]
	if shot.FinalLevel != "SESSION" || !shot.SessionServed {
		t.Fatalf("hot group not session-served: %+v", shot)
	}
	if !shot.WithinTolerance {
		t.Fatalf("session arm hot group out of tolerance: %+v", shot)
	}
	if sess.SessionRegressions != 0 {
		t.Fatalf("session arm observed %d regressions", sess.SessionRegressions)
	}
	if sess.SessionReads == 0 {
		t.Fatal("session arm coordinated no SESSION reads")
	}
	if sess.ThroughputOps <= res.Global.ThroughputOps {
		t.Fatalf("session arm throughput %.0f not above global %.0f",
			sess.ThroughputOps, res.Global.ThroughputOps)
	}
}

func TestHotColdValidation(t *testing.T) {
	spec := DefaultHotColdSpec()
	spec.HotKeys = spec.TotalKeys
	if _, err := HotCold(spec, Options{}); err == nil {
		t.Fatal("degenerate key split accepted")
	}
}

// TestDriftingScenarioReAdapts drives the drifting profile end to end: the
// controller must emit decisions on both sides of the regime change, and
// the latency estimate it sees must grow as the jitter drifts degraded.
func TestDriftingScenarioReAdapts(t *testing.T) {
	sc := Drifting()
	res, err := RunPolicy(RunSpec{
		Scenario: sc,
		Policy:   PolicySpec{Kind: PolicyHarmony, Tolerance: sc.HarmonyTolerances[0]},
		Workload: ycsb.WorkloadA(),
		Threads:  40,
		Ops:      60000,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := res.Decisions
	if len(ds) < 8 {
		t.Fatalf("only %d decisions across the drift", len(ds))
	}
	// Compare the controller's measured Tp early (healthy regime) vs late
	// (degraded regime): the drift must be visible to the monitor.
	early, late := ds[1].Model.Tp, ds[len(ds)-1].Model.Tp
	if late < early*3/2 {
		t.Fatalf("latency estimate did not degrade across the drift: early %v, late %v", early, late)
	}
}

// TestStressScenariosRunAdaptive drives each new network profile through a
// full adaptive run: cluster build, monitor, controller, workload. The
// point is scenario-diverse timing — the controller must produce decisions
// and the staleness probe must engage under Pareto, floored-exponential
// and bimodal jitter alike.
func TestStressScenariosRunAdaptive(t *testing.T) {
	for _, sc := range []Scenario{WANHeavyTail(), Degraded(), CongestedBimodal()} {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := RunPolicy(RunSpec{
				Scenario: sc,
				Policy:   PolicySpec{Kind: PolicyHarmony, Tolerance: sc.HarmonyTolerances[0]},
				Workload: ycsb.WorkloadA(),
				Threads:  8,
				Ops:      1500,
				Seed:     21,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.Operations < 1500 {
				t.Fatalf("run incomplete: %+v", res.Report)
			}
			// Heavy-tailed jitter legitimately trips the 5s op timeout on
			// the deepest draws; anything beyond a stray handful is a bug.
			if res.Report.Errors > res.Report.Operations/50 {
				t.Fatalf("%d/%d operations errored", res.Report.Errors, res.Report.Operations)
			}
			if res.Report.ThroughputOps <= 0 {
				t.Fatal("no throughput")
			}
			if len(res.Decisions) == 0 {
				t.Fatal("controller made no decisions")
			}
			if res.Report.ShadowSamples == 0 {
				t.Fatal("staleness probe never engaged")
			}
			if res.Report.ReadLatency.Count() == 0 {
				t.Fatal("no read latencies recorded")
			}
		})
	}
}

package obs

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"sync/atomic"
)

// LogLevel orders diagnostic severity. Messages below the logger's level are
// dropped before formatting.
type LogLevel int32

const (
	LogDebug LogLevel = iota
	LogInfo
	LogWarn
	LogError
)

func (l LogLevel) String() string {
	switch l {
	case LogDebug:
		return "debug"
	case LogInfo:
		return "info"
	case LogWarn:
		return "warn"
	case LogError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLogLevel parses a -log-level flag value (case-insensitive; "warning"
// is accepted for "warn").
func ParseLogLevel(s string) (LogLevel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LogDebug, nil
	case "info", "":
		return LogInfo, nil
	case "warn", "warning":
		return LogWarn, nil
	case "error":
		return LogError, nil
	}
	return LogInfo, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// Logger is a leveled, prefix-stamped diagnostic logger. Every line carries
// the process's node id and the message severity, so interleaved output from
// a multi-process live cluster stays attributable. The level can be changed
// at runtime; a nil Logger drops everything (all methods are nil-safe).
type Logger struct {
	out   *log.Logger
	name  string
	level atomic.Int32
}

// NewLogger returns a logger writing to w (os.Stderr when nil), stamping
// every line with name, and emitting messages at or above level.
func NewLogger(w io.Writer, name string, level LogLevel) *Logger {
	if w == nil {
		w = os.Stderr
	}
	l := &Logger{
		out:  log.New(w, "", log.LstdFlags|log.Lmicroseconds),
		name: name,
	}
	l.level.Store(int32(level))
	return l
}

// SetLevel changes the minimum emitted severity.
func (l *Logger) SetLevel(level LogLevel) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// Level returns the current minimum severity.
func (l *Logger) Level() LogLevel {
	if l == nil {
		return LogError + 1
	}
	return LogLevel(l.level.Load())
}

// Enabled reports whether a message at level would be emitted — callers
// guard expensive argument construction with it.
func (l *Logger) Enabled(level LogLevel) bool {
	return l != nil && level >= LogLevel(l.level.Load())
}

func (l *Logger) emit(level LogLevel, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	l.out.Printf("[%s] %s: %s", l.name, level, fmt.Sprintf(format, args...))
}

func (l *Logger) Debugf(format string, args ...any) { l.emit(LogDebug, format, args...) }
func (l *Logger) Infof(format string, args ...any)  { l.emit(LogInfo, format, args...) }
func (l *Logger) Warnf(format string, args ...any)  { l.emit(LogWarn, format, args...) }
func (l *Logger) Errorf(format string, args ...any) { l.emit(LogError, format, args...) }

// Logf adapts the logger to the plain func(string, ...any) hooks older
// config structs expose; messages arrive at info level. A nil logger yields
// a non-nil no-op function.
func (l *Logger) Logf() func(string, ...any) {
	return func(format string, args ...any) { l.Infof(format, args...) }
}

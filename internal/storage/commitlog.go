package storage

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"

	"harmony/internal/wire"
)

// FileCommitLog appends mutations to a file using the wire codec, giving the
// real (TCP) deployment crash durability. Records are wire.Mutation frames;
// Replay feeds them back through an Engine on restart.
type FileCommitLog struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	wire *wire.Writer
	path string
}

// OpenFileCommitLog opens (creating if needed) the log at path in append
// mode.
func OpenFileCommitLog(path string) (*FileCommitLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open commit log: %w", err)
	}
	bw := bufio.NewWriter(f)
	return &FileCommitLog{f: f, w: bw, wire: wire.NewWriter(bw), path: path}, nil
}

// Append implements CommitLog.
func (l *FileCommitLog) Append(key []byte, v wire.Value) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wire.Write(wire.Mutation{Key: key, Value: v})
}

// Sync flushes buffered records to the OS and fsyncs.
func (l *FileCommitLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close flushes and closes the log.
func (l *FileCommitLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}

// Replay reads the log at path and applies every record to apply. A
// truncated final record (torn write on crash) ends replay without error.
func Replay(path string, apply func(key []byte, v wire.Value) error) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("storage: open for replay: %w", err)
	}
	defer f.Close()
	r := wire.NewReader(bufio.NewReader(f))
	for {
		m, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF {
			return nil // torn tail record
		}
		if err != nil {
			// A truncated last frame surfaces as ErrTruncated wrapped in
			// the reader needing more bytes then hitting EOF; the reader
			// returns EOF in that case, so any other error is real
			// corruption.
			return fmt.Errorf("storage: replay: %w", err)
		}
		mut, ok := m.(wire.Mutation)
		if !ok {
			return fmt.Errorf("storage: replay: unexpected record %T", m)
		}
		if err := apply(mut.Key, mut.Value); err != nil {
			return err
		}
	}
}

var _ CommitLog = (*FileCommitLog)(nil)

package simnet

import (
	"math/rand"
	"testing"
	"time"

	"harmony/internal/dist"
	"harmony/internal/ring"
)

func testTopo(t *testing.T) *ring.Topology {
	t.Helper()
	topo, err := ring.NewTopology([]ring.NodeInfo{
		{ID: "a", DC: "dc1", Rack: "r1"},
		{ID: "b", DC: "dc1", Rack: "r1"},
		{ID: "c", DC: "dc1", Rack: "r2"},
		{ID: "d", DC: "dc2", Rack: "r1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func newNet(t *testing.T, p Profile) *Net {
	t.Helper()
	return New(testTopo(t), p, rand.New(rand.NewSource(42)))
}

func TestDelayByProximity(t *testing.T) {
	p := Profile{
		Base:          [4]time.Duration{1 * time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond, 1000 * time.Microsecond},
		Jitter:        dist.Constant{V: 1},
		ClientLatency: 5 * time.Millisecond,
	}
	n := newNet(t, p)
	cases := []struct {
		a, b ring.NodeID
		want time.Duration
	}{
		{"a", "a", 1 * time.Microsecond},
		{"a", "b", 10 * time.Microsecond},   // same rack
		{"a", "c", 100 * time.Microsecond},  // same DC
		{"a", "d", 1000 * time.Microsecond}, // cross DC
		{"client-x", "a", 5 * time.Millisecond},
		{"a", "client-x", 5 * time.Millisecond},
	}
	for _, c := range cases {
		got, up := n.Delay(c.a, c.b, 0)
		if !up || got != c.want {
			t.Errorf("Delay(%s,%s) = %v up=%v, want %v", c.a, c.b, got, up, c.want)
		}
	}
}

func TestBandwidthTerm(t *testing.T) {
	p := UniformProfile(time.Millisecond)
	p.BandwidthBytesPerSec = 1e6 // 1 MB/s
	n := newNet(t, p)
	got, up := n.Delay("a", "b", 1000) // 1 KB at 1 MB/s = 1ms extra
	if !up || got != 2*time.Millisecond {
		t.Fatalf("delay = %v up=%v, want 2ms", got, up)
	}
}

func TestPartitionHealIsolateRejoin(t *testing.T) {
	n := newNet(t, UniformProfile(time.Millisecond))
	n.Partition("a", "b")
	if _, up := n.Delay("a", "b", 0); up {
		t.Fatal("partitioned link up")
	}
	if _, up := n.Delay("b", "a", 0); up {
		t.Fatal("partition must be bidirectional")
	}
	if _, up := n.Delay("a", "c", 0); !up {
		t.Fatal("unrelated link cut")
	}
	n.Heal("a", "b")
	if _, up := n.Delay("a", "b", 0); !up {
		t.Fatal("healed link down")
	}

	all := []ring.NodeID{"a", "b", "c", "d"}
	n.Isolate("c", all)
	for _, peer := range []ring.NodeID{"a", "b", "d"} {
		if _, up := n.Delay("c", peer, 0); up {
			t.Fatalf("isolated node reaches %s", peer)
		}
	}
	n.Rejoin("c", all)
	for _, peer := range []ring.NodeID{"a", "b", "d"} {
		if _, up := n.Delay("c", peer, 0); !up {
			t.Fatalf("rejoined node cannot reach %s", peer)
		}
	}
}

func TestDegradeAndClear(t *testing.T) {
	n := newNet(t, UniformProfile(time.Millisecond))
	n.Degrade("a", "b", 7*time.Millisecond)
	if got, _ := n.Delay("a", "b", 0); got != 8*time.Millisecond {
		t.Fatalf("degraded = %v, want 8ms", got)
	}
	if got, _ := n.Delay("b", "a", 0); got != 8*time.Millisecond {
		t.Fatalf("degradation must be bidirectional, got %v", got)
	}
	n.ClearDegradations()
	if got, _ := n.Delay("a", "b", 0); got != time.Millisecond {
		t.Fatalf("after clear = %v, want 1ms", got)
	}
}

func TestColocate(t *testing.T) {
	p := Profile{
		Base:          [4]time.Duration{1 * time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond, 1000 * time.Microsecond},
		Jitter:        dist.Constant{V: 1},
		ClientLatency: 9 * time.Millisecond,
	}
	n := newNet(t, p)
	// Before colocation the monitor pays client latency.
	if got, _ := n.Delay("monitor", "b", 0); got != 9*time.Millisecond {
		t.Fatalf("external delay = %v", got)
	}
	n.Colocate("monitor", "a")
	if got, _ := n.Delay("monitor", "b", 0); got != 10*time.Microsecond {
		t.Fatalf("colocated same-rack delay = %v, want 10µs", got)
	}
	if got, _ := n.Delay("monitor", "d", 0); got != 1000*time.Microsecond {
		t.Fatalf("colocated cross-DC delay = %v, want 1ms", got)
	}
}

func TestJitterVariesDelay(t *testing.T) {
	p := Grid5000Profile()
	n := newNet(t, p)
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		d, _ := n.Delay("a", "c", 0)
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct delays", len(seen))
	}
}

func TestProfilesSane(t *testing.T) {
	g, e := Grid5000Profile(), EC2Profile()
	// EC2 must be uniformly slower than Grid'5000 (the paper's ~5x).
	for i := 1; i < 4; i++ {
		if e.Base[i] < 4*g.Base[i] {
			t.Fatalf("EC2 base[%d]=%v not ~5x Grid'5000 %v", i, e.Base[i], g.Base[i])
		}
	}
	if e.ClientLatency <= g.ClientLatency {
		t.Fatal("EC2 client latency should exceed Grid'5000")
	}
	u := UniformProfile(3 * time.Millisecond)
	for i := 0; i < 4; i++ {
		if u.Base[i] != 3*time.Millisecond {
			t.Fatal("uniform profile not uniform")
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	p := UniformProfile(time.Millisecond)
	p.Jitter = dist.Constant{V: -5} // hostile sampler
	n := newNet(t, p)
	if got, up := n.Delay("a", "b", 0); !up || got < 0 {
		t.Fatalf("negative delay leaked: %v", got)
	}
}

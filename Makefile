# Harmony build/test entry points. CI (.github/workflows/ci.yml) runs the
# same targets humans do, so `make ci` locally reproduces the pipeline.

GO ?= go

.PHONY: build test test-race repair-test storage-test admin-smoke bench bench-micro bench-smoke chaos-smoke lint api-check api-baseline ci

build:
	$(GO) build ./...

# Tier-1 verify: the whole suite under virtual time.
test:
	$(GO) test ./...

test-race:
	$(GO) test -race -timeout 30m ./...

# Focused anti-entropy verification: the repair package (Merkle trees,
# session protocol, scheduler) plus the cluster-level repair integration
# tests, all under the race detector.
repair-test:
	$(GO) test -race -timeout 15m ./internal/repair/
	$(GO) test -race -timeout 15m -run 'Repair|Hint|Churn' ./internal/cluster/ ./internal/bench/

# Focused durability verification: the bitcask engine (crash-recovery
# property tests, group-commit batching, data-dir locking/manifest, scan
# scratch reuse) under the race detector.
storage-test:
	$(GO) test -race -timeout 15m -run 'Persist|DataDir|Scan|Engine' ./internal/storage/

# Live observability smoke: boot a real server with -admin-addr and curl
# /metrics, /status, /trace, /debug/vars and a 1s CPU profile, failing on
# any non-200 or empty body (scripts/admin_smoke.sh).
admin-smoke:
	bash scripts/admin_smoke.sh

# Full figure regeneration through the testing.B harness (minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -timeout 60m .

# Tracked micro-benchmark baseline over the hot paths (engine Apply/Get/
# Scan for both the in-memory and persistent bitcask engines, crash
# recovery, wire Encode/Decode/Size, Merkle write-path maintenance,
# end-to-end cluster ops/sec). Results land in out/micro.json (a CI artifact); when a
# previous baseline exists it is preserved as out/micro.prev.json and a
# benchstat-style delta is printed.
bench-micro:
	@mkdir -p out
	@if [ -f out/micro.json ]; then cp out/micro.json out/micro.prev.json; fi
	$(GO) run ./cmd/bench-micro -json out/micro.json -prev out/micro.prev.json

# Cheap CI smoke: micro-benchmarks across internal packages plus one
# end-to-end scenario sweep, a single iteration each, the tracked
# bench-micro baseline (with delta vs the previous run), the hotcold
# per-group-vs-global comparison, the regroup migrating-hotspot comparison
# (learned online regrouping vs build-time-pinned groups), the simulated
# churn failure/recovery comparison (anti-entropy repair vs hints-only),
# and two live-cluster smokes (3 real server processes over loopback TCP):
# hotcold, and the churn kill -9 schedule whose third arm restarts the
# victim from its bitcask data dir (out/churn.json carries the live
# repair / hints-only / persistent-restart comparison). Each step writes
# JSON results (uploaded as CI artifacts).
bench-smoke: bench-micro
	$(GO) test -run '^$$' -bench . -benchtime 1x $$($(GO) list ./internal/... | grep -v bench/micro)
	$(GO) test -run '^$$' -bench 'BenchmarkScenarioStressProfiles|BenchmarkWorkloadAEventual' -benchtime 1x .
	$(GO) run ./cmd/harmony-bench -experiment hotcold -scenario grid5000 -ops 8000 -quiet -json out/hotcold.json
	$(GO) run ./cmd/harmony-bench -experiment regroup -ops 8000 -quiet -json out/regroup.json
	$(GO) run ./cmd/harmony-bench -experiment churn -quiet -json out/churn-sim.json
	$(GO) run ./cmd/harmony-bench -backend live -experiment hotcold -procs 3 -live-measure 3s -live-keys 1500 -json out/live.json
	$(GO) run ./cmd/harmony-bench -backend live -experiment churn -procs 3 -live-outage 1500ms -live-postwatch 4s -live-keys 900 -json out/churn.json

# Chaos smoke: the network-partition experiment on both backends, each run
# self-checking its contract (majority availability >= 80% of pre-cut,
# minority CL=ONE still served while quorum work there refuses fail-fast
# inside the op deadline, post-heal re-convergence of every staleness
# group). The sim variant runs the 6-node RF=5 cluster under virtual time;
# the live variant spawns 3 real server processes, installs the cut at
# runtime through each member's admin /faults endpoint, lets gossip do the
# detection, and heals the same way. Any contract violation exits nonzero
# AFTER out/partition*.json are written, so a failed run still uploads an
# inspectable artifact.
chaos-smoke:
	@mkdir -p out
	$(GO) run ./cmd/harmony-bench -experiment partition -quiet -json out/partition-sim.json
	$(GO) run ./cmd/harmony-bench -backend live -experiment partition -procs 3 -live-outage 5s -live-postwatch 6s -live-keys 1500 -json out/partition.json

lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; echo 'gofmt: files above need formatting'; exit 1; }
	$(GO) vet ./...

# API stability gate: go vet plus a diff of the exported-symbol snapshot
# (cmd/apicheck) against the committed baseline. An intended API change is
# landed by regenerating the baseline (make api-baseline) in the same commit,
# so every exported-surface change is an explicit, reviewable diff.
api-check:
	$(GO) vet ./...
	@mkdir -p out
	$(GO) run ./cmd/apicheck > out/api.txt
	@diff -u api/exported.txt out/api.txt || { echo 'api-check: exported API differs from api/exported.txt; if intended, run make api-baseline'; exit 1; }

api-baseline:
	$(GO) run ./cmd/apicheck > api/exported.txt

ci: lint build api-check test-race admin-smoke bench-smoke chaos-smoke

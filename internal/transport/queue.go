package transport

import (
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

// ServiceTimer returns the CPU/service time a node spends handling m.
type ServiceTimer func(m wire.Message) time.Duration

// ServiceQueue models a node's finite processing capacity: messages are
// served FIFO, each occupying the node for its service time before the
// wrapped handler runs. Under load the queue drains slower than messages
// arrive and effective propagation delay grows — the mechanism behind the
// paper's observation that stale reads increase with client thread count
// (Fig. 4(a)) and that throughput saturates near 90 threads (Fig. 5(c,d)).
//
// The queue must only be driven from its runtime (the Bus guarantees this).
type ServiceQueue struct {
	rt        sim.Runtime
	h         Handler
	svc       ServiceTimer
	busyUntil time.Time
	depth     int
	maxDepth  int
	served    uint64
	busyFor   time.Duration
}

// NewServiceQueue wraps h with a service-time queue.
func NewServiceQueue(rt sim.Runtime, h Handler, svc ServiceTimer) *ServiceQueue {
	return &ServiceQueue{rt: rt, h: h, svc: svc}
}

// Deliver implements Handler: the message is handed to the wrapped handler
// after queue drain plus its own service time. Ping and Pong bypass the
// queue entirely: the paper's monitoring module measured latency with ICMP
// ping, which the kernel answers without waiting behind the storage
// process's request backlog.
func (q *ServiceQueue) Deliver(from ring.NodeID, m wire.Message) {
	switch m.(type) {
	case wire.Ping, wire.Pong:
		q.h.Deliver(from, m)
		return
	}
	now := q.rt.Now()
	start := now
	if q.busyUntil.After(start) {
		start = q.busyUntil
	}
	d := q.svc(m)
	if d < 0 {
		d = 0
	}
	q.busyUntil = start.Add(d)
	q.busyFor += d
	q.depth++
	if q.depth > q.maxDepth {
		q.maxDepth = q.depth
	}
	q.rt.After(q.busyUntil.Sub(now), func() {
		q.depth--
		q.served++
		q.h.Deliver(from, m)
	})
}

// QueueStats is a snapshot of queue behaviour.
type QueueStats struct {
	Depth    int
	MaxDepth int
	Served   uint64
	BusyFor  time.Duration
}

// Stats returns current queue statistics (call from the queue's runtime).
func (q *ServiceQueue) Stats() QueueStats {
	return QueueStats{Depth: q.depth, MaxDepth: q.maxDepth, Served: q.served, BusyFor: q.busyFor}
}

var _ Handler = (*ServiceQueue)(nil)

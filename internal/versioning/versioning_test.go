package versioning

import (
	"fmt"
	"math/rand"
	"testing"

	"harmony/internal/wire"
)

func ck(pairs ...any) Clock {
	var c Clock
	for i := 0; i < len(pairs); i += 2 {
		c = append(c, wire.ClockEntry{Node: pairs[i].(string), Counter: uint64(pairs[i+1].(int))})
	}
	return Normalize(c)
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Clock
		want Relation
	}{
		{nil, nil, Equal},
		{ck("a", 1), nil, Descends},
		{nil, ck("a", 1), DescendedBy},
		{ck("a", 1), ck("a", 1), Equal},
		{ck("a", 2), ck("a", 1), Descends},
		{ck("a", 1), ck("a", 2), DescendedBy},
		{ck("a", 1, "b", 2), ck("a", 1), Descends},
		{ck("a", 1), ck("b", 1), Concurrent},
		{ck("a", 2, "b", 1), ck("a", 1, "b", 2), Concurrent},
		{ck("a", 1, "b", 2, "c", 3), ck("a", 1, "b", 2, "c", 3), Equal},
	}
	for i, tc := range cases {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: Compare(%v,%v)=%v want %v", i, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	raw := Clock{{Node: "b", Counter: 3}, {Node: "a", Counter: 1}, {Node: "b", Counter: 5}, {Node: "c", Counter: 0}}
	n := Normalize(raw)
	want := Clock{{Node: "a", Counter: 1}, {Node: "b", Counter: 5}}
	if len(n) != len(want) {
		t.Fatalf("normalize: got %v want %v", n, want)
	}
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("normalize: got %v want %v", n, want)
		}
	}
	// Already-normalized input passes through without reallocation.
	s := ck("a", 1, "b", 2)
	if got := Normalize(s); &got[0] != &s[0] {
		t.Error("Normalize copied an already-normalized clock")
	}
}

func TestStampAndGet(t *testing.T) {
	c := Stamp(nil, "n1", 10)
	c = Stamp(c, "n2", 20)
	c = Stamp(c, "n1", 5) // lower counter must not regress
	if got := c.Get("n1"); got != 10 {
		t.Errorf("n1=%d want 10", got)
	}
	if got := c.Get("n2"); got != 20 {
		t.Errorf("n2=%d want 20", got)
	}
	if got := c.Get("n3"); got != 0 {
		t.Errorf("n3=%d want 0", got)
	}
	if MaxCounter(c) != 20 {
		t.Errorf("MaxCounter=%d want 20", MaxCounter(c))
	}
}

// TestMergeProperties drives random clocks through Merge/Compare and checks
// the lattice laws: merge is commutative, idempotent, and the merge result
// descends both inputs.
func TestMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randClock := func() Clock {
		var c Clock
		for n := 0; n < 4; n++ {
			if rng.Intn(2) == 0 {
				c = append(c, wire.ClockEntry{Node: fmt.Sprintf("n%d", n), Counter: uint64(rng.Intn(5) + 1)})
			}
		}
		return Normalize(c)
	}
	eq := func(a, b Clock) bool { return Compare(a, b) == Equal }
	for i := 0; i < 2000; i++ {
		a, b := randClock(), randClock()
		m := Merge(a, b)
		if !eq(m, Merge(b, a)) {
			t.Fatalf("merge not commutative: %v %v", a, b)
		}
		if !eq(Merge(a, a), a) {
			t.Fatalf("merge not idempotent: %v", a)
		}
		if !Dominates(m, a) || !Dominates(m, b) {
			t.Fatalf("merge does not dominate inputs: %v %v -> %v", a, b, m)
		}
		// Compare antisymmetry.
		ra, rb := Compare(a, b), Compare(b, a)
		wantInv := map[Relation]Relation{Equal: Equal, Descends: DescendedBy, DescendedBy: Descends, Concurrent: Concurrent}
		if rb != wantInv[ra] {
			t.Fatalf("compare not antisymmetric: %v vs %v: %v / %v", a, b, ra, rb)
		}
	}
}

func val(data string, ts int64, clock Clock) wire.Value {
	return wire.Value{Data: []byte(data), Timestamp: ts, Clock: clock}
}

func TestDecideCausal(t *testing.T) {
	older := val("x", 5, ck("a", 5))
	newer := val("y", 9, ck("a", 5, "b", 9))
	take, conc := Decide(newer, older, nil)
	if !take || conc {
		t.Errorf("descendant must replace ancestor: take=%v conc=%v", take, conc)
	}
	take, conc = Decide(older, newer, nil)
	if take || conc {
		t.Errorf("ancestor must not replace descendant: take=%v conc=%v", take, conc)
	}
	take, conc = Decide(newer, newer, nil)
	if take || conc {
		t.Errorf("equal clocks must be a no-op: take=%v conc=%v", take, conc)
	}
}

func TestDecideConcurrentDeterministic(t *testing.T) {
	s1 := val("x", 7, ck("a", 7))
	s2 := val("y", 7, ck("b", 7))
	t1, c1 := Decide(s1, s2, nil)
	t2, c2 := Decide(s2, s1, nil)
	if !c1 || !c2 {
		t.Fatal("siblings not flagged concurrent")
	}
	if t1 == t2 {
		t.Fatalf("resolution not antisymmetric: both sides returned take=%v", t1)
	}
	// Arrival order must not matter: whichever wins, both replicas converge
	// on it. "y" > "x" in byte order, so s2 wins.
	if t1 || !t2 {
		t.Errorf("deterministic tie-break violated: t1=%v t2=%v", t1, t2)
	}
}

func TestDecideLegacyLWW(t *testing.T) {
	// Clock-less values reproduce the historical Fresh() rule exactly:
	// strictly newer timestamp wins, ties keep current.
	cur := val("a", 10, nil)
	if take, _ := Decide(val("b", 11, nil), cur, nil); !take {
		t.Error("newer legacy value must win")
	}
	if take, _ := Decide(val("b", 10, nil), cur, nil); take {
		t.Error("legacy tie must keep current")
	}
	if take, _ := Decide(val("b", 9, nil), cur, nil); take {
		t.Error("older legacy value must lose")
	}
	// Mixed: clock-bearing incoming vs legacy current still settles by ts.
	if take, _ := Decide(val("b", 11, ck("a", 11)), cur, nil); !take {
		t.Error("clock-bearing newer value must win over legacy")
	}
}

func TestCovers(t *testing.T) {
	token := ck("n1", 100, "n2", 50)
	if !Covers(nil, 0, nil) {
		t.Error("empty token is always covered")
	}
	if !Covers(ck("n1", 100, "n2", 50), 50, token) {
		t.Error("descending clock covers token")
	}
	// A clock missing n2 cannot cover on the vector path, but its
	// timestamp reaching the watermark still does.
	if !Covers(ck("n1", 120), 120, token) {
		t.Error("ts above watermark covers even when vector path cannot prove it")
	}
	// Timestamp watermark: ts >= MaxCounter(token) covers.
	if !Covers(nil, 100, token) {
		t.Error("ts at watermark covers")
	}
	if Covers(nil, 99, token) {
		t.Error("ts below watermark must not cover")
	}
	if Covers(ck("n3", 10), 10, token) {
		t.Error("concurrent low clock must not cover")
	}
}

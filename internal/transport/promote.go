package transport

import "harmony/internal/wire"

// promote copies, out of the receive frame, exactly the byte fields that are
// known to outlive their Deliver call — the copy-on-escape half of the
// DecodeShared aliasing contract. The TCP receive path decodes each frame
// zero-copy into a pooled buffer and releases the buffer as soon as the
// handler's post completes; any decoded bytes a handler retains past that
// point must therefore be owned copies. Promotion happens here, per message
// kind, so the handlers themselves — which the in-memory fabrics drive with
// unencoded structs — stay copy-free on the simulated hot path.
//
// The escape inventory (which fields handlers retain beyond Deliver):
//
//	ReadRequest.Key        coordinator read table (pendingReads) + ReplicaRead fan-out
//	WriteRequest.Key/Value coordinator builds Mutation{Key, Value{Data}}; hints retain it
//	ReadResponse.Value     client callback may keep the result bytes
//	ReplicaReadResp.Value  coordinator keeps replica versions in op.got
//	Mutation.Value.Data    storage engine stores the Value as-is
//	Repair.Value.Data      storage engine, same path
//	RangeSync entries      storage engine, via repair.Manager.applyEntries
//	StatsResponse samples  regrouping subsystem retains KeySamples
//
// Keys applied to the storage engine (Mutation.Key, Repair.Key, SyncEntry
// .Key) are safe un-promoted: the engine interns them via string conversion.
// Every other kind decodes byte-free or into freshly allocated slices
// (clocks, gossip digests, Merkle leaves), so it passes through untouched.
// When adding a message kind or a new retention site, extend this table.
func promote(m wire.Message) wire.Message {
	switch v := m.(type) {
	case wire.ReadRequest:
		v.Key = cloneBytes(v.Key)
		return v
	case wire.WriteRequest:
		v.Key = cloneBytes(v.Key)
		v.Value = cloneBytes(v.Value)
		return v
	case wire.ReadResponse:
		v.Value.Data = cloneBytes(v.Value.Data)
		return v
	case wire.ReplicaReadResp:
		v.Value.Data = cloneBytes(v.Value.Data)
		return v
	case wire.Mutation:
		v.Value.Data = cloneBytes(v.Value.Data)
		return v
	case wire.Repair:
		v.Value.Data = cloneBytes(v.Value.Data)
		return v
	case wire.RangeSync:
		// Entries is itself a fresh slice; only the row payloads alias.
		for i := range v.Entries {
			v.Entries[i].Value.Data = cloneBytes(v.Entries[i].Value.Data)
		}
		return v
	case wire.StatsResponse:
		for i := range v.KeySamples {
			v.KeySamples[i].Key = cloneBytes(v.KeySamples[i].Key)
		}
		return v
	}
	return m
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append(make([]byte, 0, len(b)), b...)
}

package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"harmony/internal/wire"
)

// This file implements the first future-work item of the paper's §VII:
// "provide a mechanism allowing the system to automatically divide data into
// different consistency categories without any human interaction by applying
// clustering techniques. Every category should be given the most appropriate
// consistency level in regard to the data it encloses."
//
// KeyStats accumulates per-key access-pattern features; Categorizer runs
// k-means over the feature space (write intensity and read/write contention)
// and maps each cluster to a tolerable stale-read rate: hot, update-heavy
// keys get tight tolerances (their staleness is visible), read-mostly cold
// keys get loose ones. A PerKeyLevels view then serves per-operation levels
// by combining the key's category tolerance with the current estimator
// model.

// KeyStats tracks exponentially decayed per-key access counts. It is safe
// for concurrent use.
type KeyStats struct {
	mu    sync.Mutex
	decay float64 // multiplicative decay applied on Tick
	keys  map[string]*keyCounters
}

type keyCounters struct {
	reads  float64
	writes float64
}

// NewKeyStats creates a tracker whose counters decay by the given factor
// (0 < decay < 1 keeps history; 1 never forgets) on every Tick.
func NewKeyStats(decay float64) *KeyStats {
	if decay <= 0 || decay > 1 {
		decay = 0.5
	}
	return &KeyStats{decay: decay, keys: make(map[string]*keyCounters)}
}

// ObserveRead records one read of key.
func (ks *KeyStats) ObserveRead(key []byte) { ks.observe(key, 1, 0) }

// ObserveWrite records one write of key.
func (ks *KeyStats) ObserveWrite(key []byte) { ks.observe(key, 0, 1) }

// Add merges pre-aggregated weights for key — the hook the regrouping
// subsystem uses to fold per-node samples into one cluster-wide view.
// Non-positive or non-finite weights are ignored.
func (ks *KeyStats) Add(key []byte, reads, writes float64) {
	if !(reads > 0) {
		reads = 0
	}
	if !(writes > 0) {
		writes = 0
	}
	if math.IsInf(reads, 1) || math.IsInf(writes, 1) || reads+writes == 0 {
		return
	}
	ks.observe(key, reads, writes)
}

func (ks *KeyStats) observe(key []byte, r, w float64) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	kc, ok := ks.keys[string(key)]
	if !ok {
		kc = &keyCounters{}
		ks.keys[string(key)] = kc
	}
	kc.reads += r
	kc.writes += w
}

// Tick applies decay, aging out stale history; call it once per monitoring
// interval.
func (ks *KeyStats) Tick() {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	for k, kc := range ks.keys {
		kc.reads *= ks.decay
		kc.writes *= ks.decay
		if kc.reads+kc.writes < 0.01 {
			delete(ks.keys, k)
		}
	}
}

// Len reports how many keys are currently tracked.
func (ks *KeyStats) Len() int {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return len(ks.keys)
}

// feature is the clustering space: log-scaled write intensity and the write
// share of traffic. Both correlate with how harmful eventual consistency is
// for the key.
type feature struct {
	writeIntensity float64 // log1p(writes)
	writeShare     float64 // writes / (reads+writes)
}

func (ks *KeyStats) features() (keys []string, feats []feature, weights []float64) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	keys = make([]string, 0, len(ks.keys))
	for k, kc := range ks.keys {
		if kc.reads+kc.writes > 0 {
			keys = append(keys, k)
		}
	}
	// Map iteration order is random; sorting keeps clustering (k-means++
	// seeding in particular) deterministic for a given seed.
	sort.Strings(keys)
	feats = make([]feature, 0, len(keys))
	weights = make([]float64, 0, len(keys))
	for _, k := range keys {
		kc := ks.keys[k]
		total := kc.reads + kc.writes
		feats = append(feats, feature{
			writeIntensity: math.Log1p(kc.writes),
			writeShare:     kc.writes / total,
		})
		// Cluster by sampled traffic weight, not key count: a handful of
		// hot keys carries most of the load, and under plain per-key
		// k-means a heavy tail of cold keys outvotes them at larger K —
		// centroids chase the numerous tail and the hot population gets
		// folded into whichever cluster is nearest. Weighting the seeding,
		// the centroid updates, and the cost by traffic makes the clusters
		// partition the LOAD, which is what consistency categories protect.
		weights = append(weights, total)
	}
	return keys, feats, weights
}

// Category is one consistency class produced by clustering.
type Category struct {
	// Tolerance is the category's tolerable stale-read rate.
	Tolerance float64
	// Centroid documents the cluster center (write intensity normalized to
	// [0, 1] against the recluster's hottest writer, write share).
	Centroid [2]float64
	// Keys is the number of member keys at clustering time.
	Keys int
}

// Categorizer clusters keys into consistency categories. It is safe for
// concurrent use; Recluster swaps the assignment atomically.
type Categorizer struct {
	k    int
	seed int64

	mu         sync.Mutex
	categories []Category
	assign     map[string]int
	defaultTol float64
}

// NewCategorizer creates a k-category clusterer. defaultTol applies to keys
// never seen at clustering time. seed makes clustering deterministic.
func NewCategorizer(k int, defaultTol float64, seed int64) (*Categorizer, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: need at least 2 categories, got %d", k)
	}
	return &Categorizer{
		k:          k,
		seed:       seed,
		assign:     make(map[string]int),
		defaultTol: defaultTol,
	}, nil
}

// Recluster runs k-means over the current stats and derives category
// tolerances: categories are ranked by how write-contended their centroid
// is, and tolerances are spread evenly from tight (most contended) to loose
// (least contended) within [minTol, maxTol].
//
// The resulting categories are in canonical contention order: category 0 is
// always the most write-contended (tightest tolerance), the last category
// the least contended (loosest). The order is stable across reclusterings
// of a steady workload, which keeps category identities — and therefore the
// regrouping subsystem's epochs — from churning when nothing changed.
//
// Degenerate inputs are guarded rather than fatal: an empty or too-small
// KeyStats returns an error without touching the current assignment, and
// all-identical features collapse into one populated category with finite
// tolerances (never NaN).
func (c *Categorizer) Recluster(ks *KeyStats, minTol, maxTol float64) error {
	if math.IsNaN(minTol) || math.IsNaN(maxTol) {
		return fmt.Errorf("core: tolerance bounds must be numbers, got [%v, %v]", minTol, maxTol)
	}
	minTol, maxTol = clamp01(minTol), clamp01(maxTol)
	if minTol > maxTol {
		minTol, maxTol = maxTol, minTol
	}
	keys, feats, weights := ks.features()
	if len(keys) == 0 {
		return fmt.Errorf("core: no keys observed")
	}
	if len(keys) < c.k {
		return fmt.Errorf("core: %d keys tracked, need >= %d", len(keys), c.k)
	}
	// Normalize write intensity into [0, 1] so the two feature axes carry
	// comparable leverage in the distance metric. Raw log1p(writes) spans
	// ~[0, 10] against writeShare's [0, 1]; unnormalized, extra centroids
	// at K>2 chase the intensity spread WITHIN a hot population instead of
	// separating populations with different read/write character (the warm
	// tier a three-population workload needs).
	maxIntensity := 0.0
	for _, f := range feats {
		if f.writeIntensity > maxIntensity {
			maxIntensity = f.writeIntensity
		}
	}
	if maxIntensity > 0 {
		for i := range feats {
			feats[i].writeIntensity /= maxIntensity
		}
	}
	centroids := c.kmeans(feats, weights)

	// Rank centroids by contention score (write share dominates, intensity
	// breaks ties); most contended gets the tightest tolerance. rankOf
	// remaps raw k-means cluster indices into canonical contention order.
	type ranked struct {
		idx   int
		score float64
	}
	order := make([]ranked, len(centroids))
	for i, ct := range centroids {
		order[i] = ranked{idx: i, score: ct.writeShare*10 + ct.writeIntensity}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].score > order[j].score })
	rankOf := make([]int, len(centroids))
	for rank, r := range order {
		rankOf[r.idx] = rank
	}

	cats := make([]Category, len(centroids))
	for rank, r := range order {
		frac := 0.0
		if len(order) > 1 {
			frac = float64(rank) / float64(len(order)-1)
		}
		ct := centroids[r.idx]
		cats[rank].Tolerance = minTol + frac*(maxTol-minTol)
		cats[rank].Centroid = [2]float64{ct.writeIntensity, ct.writeShare}
	}
	assign := make(map[string]int, len(keys))
	for i, f := range feats {
		best := rankOf[nearest(centroids, f)]
		assign[keys[i]] = best
		cats[best].Keys++
	}

	c.mu.Lock()
	c.categories = cats
	c.assign = assign
	c.mu.Unlock()
	return nil
}

// kmeans runs several restarts of Lloyd's algorithm and keeps the solution
// with the lowest within-cluster sum of squares. Every Recluster call
// re-seeds the restarts from the same fixed seed, so repeated clusterings
// of a steady workload converge to the same optimum instead of hopping
// between local minima — exactly the stability the epoch-versioned
// regrouping loop needs (a different local optimum would reshuffle group
// membership and force a spurious epoch).
func (c *Categorizer) kmeans(feats []feature, weights []float64) []feature {
	const restarts = 4
	var best []feature
	bestCost := math.Inf(1)
	for r := 0; r < restarts; r++ {
		rng := rand.New(rand.NewSource(c.seed + int64(r)*1_000_003))
		centroids := c.kmeansOnce(feats, weights, rng)
		cost := 0.0
		for i, f := range feats {
			cost += weights[i] * dist2(f, centroids[nearest(centroids, f)])
		}
		if cost < bestCost {
			best, bestCost = centroids, cost
		}
	}
	return best
}

// kmeansOnce is a Lloyd iteration with k-means++-style seeding, with every
// point weighted by its sampled traffic (see KeyStats.features).
func (c *Categorizer) kmeansOnce(feats []feature, weights []float64, rng *rand.Rand) []feature {
	centroids := make([]feature, 0, c.k)
	// Seed the first centroid proportional to weight, like the rest.
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}
	target := rng.Float64() * totalW
	first := 0
	for i, w := range weights {
		target -= w
		if target <= 0 {
			first = i
			break
		}
	}
	centroids = append(centroids, feats[first])
	for len(centroids) < c.k {
		// Pick the next seed proportional to weight x squared distance.
		dists := make([]float64, len(feats))
		total := 0.0
		for i, f := range feats {
			d := weights[i] * dist2(f, centroids[nearest(centroids, f)])
			dists[i] = d
			total += d
		}
		pick := 0
		if total > 0 {
			target := rng.Float64() * total
			for i, d := range dists {
				target -= d
				if target <= 0 {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(len(feats)) // all points coincide with a centroid
		}
		centroids = append(centroids, feats[pick])
	}
	assign := make([]int, len(feats))
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, f := range feats {
			best := nearest(centroids, f)
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		var sums [][2]float64 = make([][2]float64, c.k)
		wsum := make([]float64, c.k)
		for i, f := range feats {
			w := weights[i]
			sums[assign[i]][0] += w * f.writeIntensity
			sums[assign[i]][1] += w * f.writeShare
			wsum[assign[i]] += w
		}
		for j := range centroids {
			if wsum[j] == 0 {
				continue // keep the old centroid for empty clusters
			}
			centroids[j] = feature{
				writeIntensity: sums[j][0] / wsum[j],
				writeShare:     sums[j][1] / wsum[j],
			}
		}
		if !changed {
			break
		}
	}
	return centroids
}

func nearest(centroids []feature, f feature) int {
	best, bestD := 0, math.Inf(1)
	for i, ct := range centroids {
		if d := dist2(f, ct); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// shareLeverage weighs the write-share axis in the clustering metric the
// same 10x it carries in the contention ranking: populations are told apart
// by their read/write MIX, while (normalized) write intensity only breaks
// ties within a mix. Without the leverage, a zipfian population's internal
// intensity spread out-distances the share gap between populations, and
// extra centroids at K>2 split the hot set instead of isolating a warm tier.
const shareLeverage = 10

func dist2(a, b feature) float64 {
	dx := a.writeIntensity - b.writeIntensity
	dy := shareLeverage * (a.writeShare - b.writeShare)
	return dx*dx + dy*dy
}

// Categories returns the current category table.
func (c *Categorizer) Categories() []Category {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Category, len(c.categories))
	copy(out, c.categories)
	return out
}

// Assignment returns a copy of the current key→category map (categories in
// canonical contention order, see Recluster). Empty before the first
// successful Recluster.
func (c *Categorizer) Assignment() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.assign))
	for k, g := range c.assign {
		out[k] = g
	}
	return out
}

// ToleranceFor returns the tolerable stale-read rate for a key.
func (c *Categorizer) ToleranceFor(key []byte) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx, ok := c.assign[string(key)]; ok && idx < len(c.categories) {
		return c.categories[idx].Tolerance
	}
	return c.defaultTol
}

// PerKeyLevels combines a Categorizer with the live estimation model: each
// read gets the level its key's category demands under current conditions.
// It implements client.ConsistencyPolicy (writes ship at ONE, the paper's
// configuration).
//
// When GroupFn is set and the monitor reports per-group rates, the key's
// category tolerance is evaluated against its own group's measured λr/λw
// instead of the cluster-wide model, so a cold group's keys are judged by
// the cold group's (benign) arrival process even while a hot group melts.
type PerKeyLevels struct {
	Cat *Categorizer
	// AvgWriteBytes / BandwidthBytesPerSec parameterize Tp like
	// ControllerConfig does.
	AvgWriteBytes        float64
	BandwidthBytesPerSec float64
	// GroupFn maps keys to telemetry groups; it must match the cluster's
	// Config.GroupFn. Nil keeps the global model for every key.
	GroupFn func(key []byte) int

	mu     sync.Mutex
	model  Model
	groups []Model
}

// Observe updates the estimator inputs; wire it to a Monitor alongside (or
// instead of) a Controller.
func (p *PerKeyLevels) Observe(obs Observation) {
	tp := PropagationTime(obs.Latency, p.AvgWriteBytes, p.BandwidthBytesPerSec)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.model = Model{
		N:       p.model.N,
		LambdaR: obs.ReadRate,
		LambdaW: obs.WriteInterval,
		Tp:      tp,
	}
	p.groups = p.groups[:0]
	for _, gr := range obs.Groups {
		p.groups = append(p.groups, Model{
			N:       p.model.N,
			LambdaR: gr.ReadRate,
			LambdaW: gr.WriteInterval,
			Tp:      tp,
		})
	}
}

// SetN fixes the replication factor used by the per-key model.
func (p *PerKeyLevels) SetN(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.model.N = n
	for g := range p.groups {
		p.groups[g].N = n
	}
}

// modelFor picks the estimator model judging a key: its group's measured
// rates when available, the global model otherwise. Out-of-range GroupFn
// results clamp to group 0, matching the cluster nodes' telemetry clamp.
// GroupFn runs outside the lock — it is user code on the per-read path.
func (p *PerKeyLevels) modelFor(key []byte) Model {
	g := -1
	if p.GroupFn != nil {
		g = p.GroupFn(key)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.GroupFn == nil || len(p.groups) == 0 {
		return p.model
	}
	if g < 0 || g >= len(p.groups) {
		g = 0
	}
	return p.groups[g]
}

// ReadLevelFor implements per-key adaptive consistency: the paper's §III
// decision scheme evaluated against the key's category tolerance.
func (p *PerKeyLevels) ReadLevelFor(key []byte) wire.ConsistencyLevel {
	tol := p.Cat.ToleranceFor(key)
	model := p.modelFor(key)
	if !model.Valid() || tol >= model.StaleReadProbability() {
		return wire.One
	}
	return wire.LevelForCount(model.ReplicasNeeded(tol), model.N)
}

// LevelsFor implements client.ConsistencyPolicy: reads at the key's
// category-demanded level, writes at ONE.
func (p *PerKeyLevels) LevelsFor(key []byte) (read, write wire.ConsistencyLevel) {
	return p.ReadLevelFor(key), wire.One
}

package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	// Aliased: Observe's parameter is conventionally named obs.
	obspkg "harmony/internal/obs"
	"harmony/internal/wire"
)

// Policy is an application's consistency requirement expressed the way the
// paper defines it: the fraction of stale reads the application tolerates
// (app_stale_rate). 0 demands strong consistency on every read; 1 accepts
// static eventual consistency.
type Policy struct {
	// Name labels the policy in reports ("Harmony-20%").
	Name string
	// ToleratedStaleRate is app_stale_rate in [0, 1].
	ToleratedStaleRate float64
}

// Validate clamps the tolerance into [0, 1].
func (p Policy) Validate() Policy {
	if p.ToleratedStaleRate < 0 {
		p.ToleratedStaleRate = 0
	}
	if p.ToleratedStaleRate > 1 {
		p.ToleratedStaleRate = 1
	}
	return p
}

// Decision is the controller's output after one observation.
type Decision struct {
	At       time.Time
	Estimate float64 // θ_stale: estimated stale-read rate at CL=ONE
	Xn       int     // replicas a read must block for
	Level    wire.ConsistencyLevel
	// WriteLevel is the level writes of this stream should ship at: ONE in
	// the paper's scheme, QUORUM when adaptive write levels trade cheaper
	// reads for dearer writes (see ControllerConfig.AdaptiveWriteLevels).
	// Zero on decisions from configurations predating the feature is read
	// as ONE.
	WriteLevel wire.ConsistencyLevel
	Model      Model
	// DivergenceHold reports that the quorum floor was forced because
	// unrepaired divergence alone breached the tolerance (see
	// ControllerConfig.DivergenceSensitivity) — the stream stays held until
	// anti-entropy converges.
	DivergenceHold bool
	// AvailabilityClamp reports that the commanded level was lowered
	// because the cluster's failure detectors see too few live members to
	// serve the demanded level: a level blocking for more replicas than
	// remain reachable cannot succeed, it can only turn every operation
	// into a deadline-length failure. During a partition the clamp keeps
	// the majority side available at the strongest level it can actually
	// serve; the staleness estimate is still reported so consumers can see
	// the tolerance is (unavoidably) breached while the cut lasts.
	AvailabilityClamp bool
}

// ControllerConfig configures the adaptive-consistency module.
type ControllerConfig struct {
	Policy Policy
	// N is the replication factor.
	N int
	// AvgWriteBytes and BandwidthBytesPerSec parameterize Tp(Ln, avgw).
	// A zero AvgWriteBytes uses the monitor's measured mean write size
	// (the paper's avgw is an observed quantity); a zero bandwidth reduces
	// Tp to the network latency alone.
	AvgWriteBytes        float64
	BandwidthBytesPerSec float64
	// UseMeanLatency switches Tp to the mean peer latency instead of the
	// max; the default (max) is conservative: propagation is complete only
	// when the farthest replica has the update.
	UseMeanLatency bool
	// FixedTp, when positive, disables the latency term entirely and uses
	// this constant — the ablation of DESIGN.md §6 showing why monitoring
	// Ln matters (Fig. 4(b)).
	FixedTp time.Duration
	// AdaptiveWriteLevels lets the controller pick the WRITE consistency
	// level per decision stream instead of shipping every write at ONE:
	// when the estimator demands reads block for more than a quorum, the
	// stream's writes move to QUORUM and its reads cap at QUORUM — the
	// R+W>N overlap then guarantees reads observe every completed write, a
	// strictly stronger guarantee than the probabilistic Xn>quorum one, at
	// lower read fan-in. Read-heavy workloads (the only regime where the
	// estimator pushes Xn that high) come out ahead because the expensive
	// level moves to the rare operation. The overlap only covers writes
	// issued after a flip: for roughly one propagation time, rows written
	// at ONE just before it are read at the capped quorum instead of the
	// model's Xn, a transient the tolerance may briefly exceed. Off by
	// default: write-ONE is the paper's configuration.
	AdaptiveWriteLevels bool
	// DivergenceSensitivity couples the controller to the anti-entropy
	// divergence gauge (Observation.Divergence): unrepaired replica
	// divergence — a recovering node serving data that predates its outage
	// — is staleness the propagation-time model cannot see, so the gauge ν
	// is folded into the estimate as an extra stale probability
	// 1−exp(−sensitivity·ν) and groups whose divergence alone breaches
	// their tolerance are forced to at least quorum reads until repair
	// converges (quorum suffices: with one recovering replica, any
	// multi-replica read includes a healthy one and last-writer-wins picks
	// its fresher version). Zero means 1.0; negative disables the coupling.
	DivergenceSensitivity float64
	// OnDecision, when set, observes every decision (for tracing/benches).
	OnDecision func(Decision)
	// Trace, when set, receives structured control-loop events: per-group
	// level changes, divergence hold/release transitions, SESSION-tier
	// overrides, and regroups — each stamped with the observation that
	// triggered it. Nil disables tracing; emission happens outside the
	// controller's lock.
	Trace *obspkg.Trace

	// Groups turns the controller into a multi-model controller: one
	// estimator model and decision stream per key group, fed by the
	// monitor's per-group rates. Zero or one keeps the classic global
	// controller (per-group state still exists for group 0 but mirrors
	// the global decisions exactly).
	Groups int
	// GroupFn maps a key to its group for ReadLevelFor; it must match the
	// cluster's Config.GroupFn. Nil assigns every key to group 0. It is
	// consulted with the controller's lock held so a key is always judged
	// by the epoch its group id belongs to; it must be cheap and must not
	// call back into the controller. Regroup supersedes it at runtime.
	GroupFn func(key []byte) int
	// GroupTolerances overrides Policy.ToleratedStaleRate per group
	// (index by group id); groups beyond the slice fall back to the
	// global policy. This is how hot contended data gets a tight target
	// while cold read-mostly data keeps a loose one. Regroup supersedes
	// it at runtime.
	GroupTolerances []float64
	// OnGroupDecision, when set, observes every per-group decision.
	OnGroupDecision func(group int, d Decision)

	// SessionGroups marks groups (index by group id) whose clients read
	// through client.Session: their correctness need is session-scoped
	// (read-your-writes, monotonic reads), which wire.Session enforces via
	// session tokens at single-replica cost in the common case. For a marked
	// group, any decision that would raise reads above ONE is served at
	// SESSION instead — a distinct cost/staleness point on the menu: it
	// blocks for one replica like ONE (escalating only when a token is not
	// yet satisfied locally) while eliminating the regressions the session's
	// own clients could observe, rather than bounding the cluster-wide
	// stale-read probability the way QUORUM does. Groups beyond the slice
	// (or with a false entry) keep the paper's ONE/.../ALL menu. Regroup
	// clears the flags (group ids change meaning); re-arm with
	// SetSessionGroups after installing the new epoch.
	SessionGroups []bool
}

// Controller is Harmony's adaptive-consistency module: it consumes monitor
// observations, estimates the stale-read rate were reads served at CL=ONE,
// and applies the paper's decision scheme —
//
//	if app_stale_rate ≥ θ_stale: Level = ONE
//	else:                        Level from Xn (equation 8)
//
// Controller implements client.ConsistencyPolicy (LevelsFor), so drivers
// pick up the current levels on every operation, and it is safe for
// concurrent use (clients and the monitor may live on different runtimes).
//
// With ControllerConfig.Groups > 1 it is a multi-model controller: every
// key group gets its own estimator model and decision stream derived from
// the monitor's per-group arrival rates, so each read is served at the
// level its key's group demands. The global decision stream (ReadLevel, Last,
// History) is always computed from the cluster-wide rates, so a
// single-group configuration behaves exactly like the classic controller.
type Controller struct {
	cfg ControllerConfig

	mu      sync.Mutex
	level   wire.ConsistencyLevel
	last    Decision
	history []Decision
	groups  []groupState
	keep    int
	// Mutable group structure, swapped atomically by Regroup: the grouping
	// epoch, the key→group function, and the per-group tolerances always
	// change together under mu, so ReadLevelFor never judges a key with a
	// group id from one epoch against the group table of another.
	epoch   uint64
	groupFn func(key []byte) int
	tols    []float64
	sess    []bool
}

// groupState is one key group's live decision stream.
type groupState struct {
	level   wire.ConsistencyLevel
	last    Decision
	history []Decision
}

// NewController creates a controller defaulting to eventual consistency
// until the first observation arrives (the paper's default level).
func NewController(cfg ControllerConfig) *Controller {
	cfg.Policy = cfg.Policy.Validate()
	if cfg.N < 1 {
		cfg.N = 1
	}
	if cfg.Groups < 1 {
		cfg.Groups = 1
	}
	groups := make([]groupState, cfg.Groups)
	for g := range groups {
		groups[g].level = wire.One
	}
	return &Controller{
		cfg:     cfg,
		level:   wire.One,
		groups:  groups,
		keep:    4096,
		groupFn: cfg.GroupFn,
		tols:    append([]float64(nil), cfg.GroupTolerances...),
		sess:    append([]bool(nil), cfg.SessionGroups...),
	}
}

// Groups reports how many key groups the controller currently adapts.
func (c *Controller) Groups() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.groups)
}

// Epoch reports the grouping epoch the controller's group table belongs to
// (zero until the first Regroup).
func (c *Controller) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// groupToleranceLocked resolves the tolerable stale-read rate for a group.
// Callers must hold c.mu.
func (c *Controller) groupToleranceLocked(g int) float64 {
	if g < len(c.tols) {
		t := c.tols[g]
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return t
	}
	return c.cfg.Policy.ToleratedStaleRate
}

// Regroup atomically installs a new grouping epoch: the key→group function,
// the per-group tolerances, and the per-group decision streams swap
// together. len(tolerances) is the new group count. parents[g] names the
// old group whose decision stream seeds new group g — the model migration
// that keeps a renamed-but-unchanged group at its adapted level instead of
// resetting everything to eventual consistency on every regroup; a negative
// (or out-of-range) parent seeds the group from the global stream. Groups
// without heirs are retired. Epochs must strictly increase: a stale or
// duplicate epoch is ignored, so redelivered updates apply exactly once.
func (c *Controller) Regroup(epoch uint64, groupFn func(key []byte) int, tolerances []float64, parents []int) {
	n := len(tolerances)
	if n < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch <= c.epoch {
		return
	}
	next := make([]groupState, n)
	for g := range next {
		parent := -1
		if g < len(parents) {
			parent = parents[g]
		}
		if parent >= 0 && parent < len(c.groups) {
			old := &c.groups[parent]
			next[g] = groupState{
				level:   old.level,
				last:    old.last,
				history: append([]Decision(nil), old.history...),
			}
		} else {
			// Fresh group: inherit the cluster-wide stream until its own
			// first per-group observation arrives.
			next[g] = groupState{level: c.level, last: c.last}
		}
	}
	c.epoch = epoch
	c.groups = next
	c.groupFn = groupFn
	c.tols = append([]float64(nil), tolerances...)
	// Session flags name groups of the retired epoch; the new epoch's groups
	// start unflagged until SetSessionGroups re-arms them.
	c.sess = nil
	c.cfg.Trace.Add(obspkg.Event{
		Kind:   obspkg.EventRegroup,
		Group:  -1,
		Epoch:  epoch,
		Detail: fmt.Sprintf("controller installed epoch %d: %d groups (%d inherited streams)", epoch, n, len(parents)),
	})
}

// SetSessionGroups installs per-group session flags for the current grouping
// (see ControllerConfig.SessionGroups). Call it after Regroup to re-arm
// session-tier selection for the new epoch's groups.
func (c *Controller) SetSessionGroups(flags []bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sess = append([]bool(nil), flags...)
}

// sessionOKLocked reports whether group g is flagged session-tolerant.
// Callers must hold c.mu.
func (c *Controller) sessionOKLocked(g int) bool {
	return g >= 0 && g < len(c.sess) && c.sess[g]
}

// ReadLevel reports the global stream's current read level.
func (c *Controller) ReadLevel() wire.ConsistencyLevel {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// ReadLevelFor serves the key's group's current read level. Out-of-range
// GroupFn results clamp to group 0, matching the
// cluster nodes' telemetry clamp so a miscategorized key is served by the
// same group whose counters it feeds. The group function runs under the
// controller's lock so the (group id, group table) pair is always from one
// epoch, even while a Regroup races this read.
func (c *Controller) ReadLevelFor(key []byte) wire.ConsistencyLevel {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := 0
	if c.groupFn != nil {
		g = c.groupFn(key)
	}
	if g < 0 || g >= len(c.groups) {
		g = 0
	}
	return c.groups[g].level
}

// WriteLevel reports the level the global stream's writes should ship at
// (ONE unless adaptive write levels moved them to QUORUM).
func (c *Controller) WriteLevel() wire.ConsistencyLevel {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.last.WriteLevel == 0 {
		return wire.One
	}
	return c.last.WriteLevel
}

// WriteLevelFor serves the key's group's current write level, resolved under
// the same lock as the group table so key and level always belong to one
// epoch (the ConsistencyPolicy contract).
func (c *Controller) WriteLevelFor(key []byte) wire.ConsistencyLevel {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := 0
	if c.groupFn != nil {
		g = c.groupFn(key)
	}
	if g < 0 || g >= len(c.groups) {
		g = 0
	}
	if l := c.groups[g].last.WriteLevel; l != 0 {
		return l
	}
	return wire.One
}

// LevelsFor implements client.ConsistencyPolicy: the key's group supplies
// both the read and the write level, resolved under one lock acquisition so
// a key is never judged with one epoch's group id against another epoch's
// group table, and read and write level always come from the same decision.
func (c *Controller) LevelsFor(key []byte) (read, write wire.ConsistencyLevel) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := 0
	if c.groupFn != nil {
		g = c.groupFn(key)
	}
	if g < 0 || g >= len(c.groups) {
		g = 0
	}
	read = c.groups[g].level
	write = c.groups[g].last.WriteLevel
	if write == 0 {
		write = wire.One
	}
	return read, write
}

// GroupLast returns the most recent decision for a group.
func (c *Controller) GroupLast(g int) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g < 0 || g >= len(c.groups) {
		return Decision{}
	}
	return c.groups[g].last
}

// GroupHistory returns a copy of a group's retained decision trace.
func (c *Controller) GroupHistory(g int) []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g < 0 || g >= len(c.groups) {
		return nil
	}
	out := make([]Decision, len(c.groups[g].history))
	copy(out, c.groups[g].history)
	return out
}

// Last returns the most recent decision.
func (c *Controller) Last() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// History returns a copy of the retained decision trace.
func (c *Controller) History() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Decision, len(c.history))
	copy(out, c.history)
	return out
}

// divergenceStaleness converts the divergence gauge ν into an extra stale
// probability via the configured sensitivity (saturating: any sustained
// repair activity reads as near-certain divergence exposure).
func (c *Controller) divergenceStaleness(divergence float64) float64 {
	w := c.cfg.DivergenceSensitivity
	if w < 0 || divergence <= 0 {
		return 0
	}
	if w == 0 {
		w = 1
	}
	return 1 - math.Exp(-w*divergence)
}

// decide runs the paper's decision scheme for one model against one
// tolerance, treating unrepaired divergence (extra stale probability pd, 0
// when repair is converged or disabled) as staleness on top of the model's
// propagation estimate.
func (c *Controller) decide(at time.Time, model Model, tolerated, pd float64, reachable int) Decision {
	d := Decision{At: at, Model: model, WriteLevel: wire.One}
	d.Estimate = pd + (1-pd)*model.StaleReadProbability()
	if (!model.Valid() && pd <= 0) || tolerated >= d.Estimate {
		// No signal, or the application tolerates the estimated staleness:
		// eventual consistency.
		d.Xn = 1
		d.Level = wire.One
	} else {
		d.Xn = 1
		if model.Valid() {
			d.Xn = model.ReplicasNeeded(tolerated)
		}
		if pd > tolerated {
			// Divergence alone breaches the tolerance: hold at least quorum
			// until anti-entropy converges (see DivergenceSensitivity).
			d.DivergenceHold = true
			if q := c.cfg.N/2 + 1; d.Xn < q {
				d.Xn = q
			}
		}
		if q := c.cfg.N/2 + 1; c.cfg.AdaptiveWriteLevels && d.Xn > q {
			// Quorum writes + quorum reads overlap on every replica set:
			// cheaper reads than the model's Xn with a stronger guarantee
			// (see AdaptiveWriteLevels).
			d.Xn = q
			d.WriteLevel = wire.Quorum
		}
		d.Level = wire.LevelForCount(d.Xn, c.cfg.N)
	}
	// Availability clamp, applied last so it wins over the divergence hold:
	// commanding a level that blocks for more replicas than the failure
	// detectors believe reachable cannot add consistency — every such
	// operation just fails after its deadline (see Decision.AvailabilityClamp).
	if reachable > 0 && reachable < c.cfg.N {
		if d.Level.BlockFor(c.cfg.N) > reachable {
			d.AvailabilityClamp = true
			d.Level = strongestServable(c.cfg.N, reachable)
			if d.Xn > reachable {
				d.Xn = reachable
			}
		}
		if d.WriteLevel.BlockFor(c.cfg.N) > reachable {
			d.AvailabilityClamp = true
			d.WriteLevel = wire.One
		}
	}
	return d
}

// strongestServable returns the strongest consistency level whose replica
// fan-in fits within reachable live replicas under replication factor rf.
func strongestServable(rf, reachable int) wire.ConsistencyLevel {
	for _, l := range []wire.ConsistencyLevel{wire.All, wire.Quorum, wire.Three, wire.Two} {
		if l.BlockFor(rf) <= reachable {
			return l
		}
	}
	return wire.One
}

// propagation resolves the Tp input from the cluster-wide mean write size.
func (c *Controller) propagation(obs Observation) time.Duration {
	return c.propagationWith(obs, c.cfg.AvgWriteBytes)
}

// propagationWith resolves Tp for one model using avgw as the mean write
// payload; non-positive avgw falls back to the observed cluster-wide mean.
func (c *Controller) propagationWith(obs Observation, avgw float64) time.Duration {
	ln := obs.Latency
	if c.cfg.UseMeanLatency {
		ln = obs.MeanLatency
	}
	if avgw <= 0 {
		avgw = obs.AvgWriteBytes
	}
	tp := PropagationTime(ln, avgw, c.cfg.BandwidthBytesPerSec)
	if c.cfg.FixedTp > 0 {
		tp = c.cfg.FixedTp
	}
	return tp
}

// Observe consumes one monitoring observation and updates the consistency
// level of every group (plus the global level); it is the OnObservation
// hook for a Monitor.
func (c *Controller) Observe(obs Observation) {
	tp := c.propagation(obs)
	// Reachable replicas under the monitor's best liveness view: each down
	// member is conservatively assumed to replicate the keys in question
	// (exact when RF spans the membership, worst-case otherwise). Zero —
	// no detector wired, or all members alive — disables the clamp.
	reachable := 0
	if obs.AliveMembers > 0 && obs.AliveMembers < obs.Members {
		reachable = c.cfg.N - (obs.Members - obs.AliveMembers)
		if reachable < 1 {
			reachable = 1
		}
	}
	global := c.decide(obs.At, Model{
		N:       c.cfg.N,
		LambdaR: obs.ReadRate,
		LambdaW: obs.WriteInterval,
		Tp:      tp,
	}, c.cfg.Policy.ToleratedStaleRate, c.divergenceStaleness(obs.Divergence), reachable)

	c.mu.Lock()
	// Per-group decisions: measured group rates when the monitor reports
	// exactly the groups of this controller's current epoch; any shape or
	// epoch mismatch means the cluster's grouping and ours disagree (a
	// regroup is still propagating, or the GroupFns differ), so every
	// group falls back to the cluster-wide rates. With one group the
	// streams therefore coincide with the global one — the refactor is a
	// strict generalization of the global controller.
	aligned := len(obs.Groups) == len(c.groups) && obs.Epoch == c.epoch
	groupDs := make([]Decision, len(c.groups))
	var events []obspkg.Event
	for g := range c.groups {
		model := Model{N: c.cfg.N, LambdaR: obs.ReadRate, LambdaW: obs.WriteInterval, Tp: tp}
		div := obs.Divergence
		if aligned {
			model.LambdaR = obs.Groups[g].ReadRate
			model.LambdaW = obs.Groups[g].WriteInterval
			div = obs.Groups[g].Divergence
			// Groups with distinct measured payload sizes get distinct Tp
			// estimates (unless a configured AvgWriteBytes pins avgw).
			if gw := obs.Groups[g].AvgWriteBytes; gw > 0 && c.cfg.AvgWriteBytes <= 0 {
				model.Tp = c.propagationWith(obs, gw)
			}
		}
		tol := c.groupToleranceLocked(g)
		groupDs[g] = c.decide(obs.At, model, tol, c.divergenceStaleness(div), reachable)
		demanded := groupDs[g].Level
		if c.sessionOKLocked(g) && groupDs[g].Level != wire.One {
			// Session-flagged group: any tighter-than-ONE demand is served by
			// the SESSION tier instead — token-checked reads block for one
			// replica in the common case, which is exactly the guarantee this
			// group's clients need (see ControllerConfig.SessionGroups).
			// Writes stay at ONE: session is a read-side guarantee.
			groupDs[g].Xn = 1
			groupDs[g].Level = wire.Session
			groupDs[g].WriteLevel = wire.One
		}
		// Trace transitions against the still-uncommitted previous state;
		// events are appended outside the lock below.
		if c.cfg.Trace != nil {
			old := &c.groups[g]
			nd := groupDs[g]
			base := obspkg.Event{
				Group: g, Epoch: c.epoch,
				Estimate: nd.Estimate, Tolerance: tol, Xn: nd.Xn, Divergence: div,
			}
			if nd.Level != old.level {
				e := base
				e.Kind = obspkg.EventLevel
				e.From = old.level.String()
				e.To = nd.Level.String()
				events = append(events, e)
			}
			if nd.Level == wire.Session && demanded != wire.Session && old.level != wire.Session {
				e := base
				e.Kind = obspkg.EventSession
				e.From = demanded.String()
				e.To = wire.Session.String()
				e.Detail = "session-flagged group served at SESSION instead of demanded level"
				events = append(events, e)
			}
			if nd.AvailabilityClamp != old.last.AvailabilityClamp {
				e := base
				e.Kind = obspkg.EventAvailabilityClamp
				e.From = old.level.String()
				e.To = nd.Level.String()
				if nd.AvailabilityClamp {
					e.Detail = fmt.Sprintf("only %d of %d replicas reachable", reachable, c.cfg.N)
				} else {
					e.Detail = "membership recovered, clamp released"
				}
				events = append(events, e)
			}
			if nd.DivergenceHold != old.last.DivergenceHold {
				e := base
				if nd.DivergenceHold {
					e.Kind = obspkg.EventDivergenceHold
					e.To = nd.Level.String()
				} else {
					e.Kind = obspkg.EventDivergenceRelease
					e.To = nd.Level.String()
				}
				events = append(events, e)
			}
		}
	}

	c.level = global.Level
	c.last = global
	c.history = appendCapped(c.history, global, c.keep)
	for g := range c.groups {
		c.groups[g].level = groupDs[g].Level
		c.groups[g].last = groupDs[g]
		c.groups[g].history = appendCapped(c.groups[g].history, groupDs[g], c.keep)
	}
	cb, gcb := c.cfg.OnDecision, c.cfg.OnGroupDecision
	c.mu.Unlock()
	for _, e := range events {
		c.cfg.Trace.Add(e)
	}
	if cb != nil {
		cb(global)
	}
	if gcb != nil {
		for g, d := range groupDs {
			gcb(g, d)
		}
	}
}

// appendCapped appends keeping at most keep trailing entries.
func appendCapped(hist []Decision, d Decision, keep int) []Decision {
	hist = append(hist, d)
	if len(hist) > keep {
		hist = hist[len(hist)-keep:]
	}
	return hist
}

// Policy returns the controller's policy.
func (c *Controller) Policy() Policy { return c.cfg.Policy }

package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"harmony/internal/stats"
	"harmony/internal/wire"
)

// Concurrent recording through the stripes must yield exactly the histogram
// a serial recorder would have built: bucketing is deterministic and Merge
// adds bucket counts, so counts, sum, min/max, and every quantile agree.
func TestConcurrentHistMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const goroutines, perG = 8, 2000
	samples := make([][]time.Duration, goroutines)
	for g := range samples {
		samples[g] = make([]time.Duration, perG)
		for i := range samples[g] {
			samples[g][i] = time.Duration(rng.Int63n(int64(2 * time.Second)))
		}
	}

	var ch ConcurrentHist
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(ds []time.Duration) {
			defer wg.Done()
			for _, d := range ds {
				ch.Record(d)
			}
		}(samples[g])
	}
	wg.Wait()

	var serial stats.Histogram
	for _, ds := range samples {
		for _, d := range ds {
			serial.Record(d)
		}
	}

	got := ch.Snapshot()
	if got.Count() != serial.Count() {
		t.Fatalf("count = %d, want %d", got.Count(), serial.Count())
	}
	if got.Sum() != serial.Sum() {
		t.Fatalf("sum = %v, want %v", got.Sum(), serial.Sum())
	}
	if got.Min() != serial.Min() || got.Max() != serial.Max() {
		t.Fatalf("min/max = %v/%v, want %v/%v", got.Min(), got.Max(), serial.Min(), serial.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		if g, w := got.Quantile(q), serial.Quantile(q); g != w {
			t.Fatalf("q%.2f = %v, want %v", q, g, w)
		}
	}
}

func TestConcurrentHistReset(t *testing.T) {
	var ch ConcurrentHist
	ch.Record(time.Millisecond)
	ch.Reset()
	if h := ch.Snapshot(); h.Count() != 0 {
		t.Fatalf("count after reset = %d", h.Count())
	}
}

// The hot-path contract: recording allocates nothing, including through the
// op × level dispatch.
func TestRecordZeroAlloc(t *testing.T) {
	var ch ConcurrentHist
	if a := testing.AllocsPerRun(1000, func() { ch.Record(time.Millisecond) }); a != 0 {
		t.Fatalf("ConcurrentHist.Record allocates %v/op", a)
	}
	olh := NewOpLevelHist()
	if a := testing.AllocsPerRun(1000, func() {
		olh.Record(OpRead, wire.Quorum, time.Millisecond)
	}); a != 0 {
		t.Fatalf("OpLevelHist.Record allocates %v/op", a)
	}
}

func TestOpLevelHistNilSafe(t *testing.T) {
	var olh *OpLevelHist
	olh.Record(OpWrite, wire.One, time.Millisecond) // must not panic
	if s := olh.Snapshot(); s != nil {
		t.Fatalf("nil snapshot = %v", s)
	}
}

func TestOpLevelHistSnapshotOrder(t *testing.T) {
	olh := NewOpLevelHist()
	olh.Record(OpWrite, wire.Quorum, 3*time.Millisecond)
	olh.Record(OpRead, wire.Quorum, 2*time.Millisecond)
	olh.Record(OpRead, wire.One, time.Millisecond)
	olh.Record(OpRead, wire.ConsistencyLevel(99), time.Millisecond) // clamps to slot 0

	cells := olh.Snapshot()
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	wantOrder := []struct {
		op    OpKind
		level wire.ConsistencyLevel
	}{
		{OpRead, 0}, {OpRead, wire.One}, {OpRead, wire.Quorum}, {OpWrite, wire.Quorum},
	}
	for i, w := range wantOrder {
		if cells[i].Op != w.op || cells[i].Level != w.level {
			t.Fatalf("cell %d = (%v, %v), want (%v, %v)",
				i, cells[i].Op, cells[i].Level, w.op, w.level)
		}
	}
	if cells[2].Hist.Count() != 1 || cells[2].Hist.Sum() != 2*time.Millisecond {
		t.Fatalf("read/QUORUM cell = %v", cells[2].Hist.String())
	}
}

func BenchmarkConcurrentHistRecord(b *testing.B) {
	var ch ConcurrentHist
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ch.Record(time.Millisecond)
		}
	})
}

package obs

import (
	"strings"
	"testing"
)

func TestParseLogLevel(t *testing.T) {
	cases := map[string]LogLevel{
		"debug": LogDebug, "INFO": LogInfo, "": LogInfo,
		"warn": LogWarn, "Warning": LogWarn, "error": LogError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Fatal("ParseLogLevel(loud) accepted")
	}
}

func TestLoggerLevelFilterAndPrefix(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, "node-3", LogWarn)
	l.Debugf("dropped %d", 1)
	l.Infof("dropped %d", 2)
	l.Warnf("kept %d", 3)
	l.Errorf("kept %d", 4)

	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("below-level lines emitted:\n%s", out)
	}
	if !strings.Contains(out, "[node-3] warn: kept 3") ||
		!strings.Contains(out, "[node-3] error: kept 4") {
		t.Fatalf("missing prefixed lines:\n%s", out)
	}

	l.SetLevel(LogDebug)
	if !l.Enabled(LogDebug) {
		t.Fatal("SetLevel(debug) not applied")
	}
	l.Debugf("now visible")
	if !strings.Contains(buf.String(), "[node-3] debug: now visible") {
		t.Fatalf("debug line missing after SetLevel:\n%s", buf.String())
	}

	var nl *Logger
	nl.Infof("no panic")    // nil-safe
	nl.Logf()("still fine") // adapter nil-safe
}
